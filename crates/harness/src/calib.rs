//! Paper-calibration conformance: the paper's headline numbers as an
//! executable test suite.
//!
//! The reproduction's danger mode is silent drift: a timing-model or
//! scheduler change that keeps every test green while bending the
//! science — the figure trends — away from the paper. This module turns
//! the paper itself into a machine-checked oracle. An in-tree table of
//! the paper's reported numbers ([`CHECKS`]) is evaluated against the
//! CSVs and metrics sidecars an `experiments` run wrote under
//! `results/`, producing a deterministic `calibration.json` report
//! (schema [`CALIB_SCHEMA`]).
//!
//! Two kinds of assertion, mirroring how EXPERIMENTS.md reads the
//! figures:
//!
//! * **tolerance bands** — a derived quantity (e.g. the fig15 mark
//!   speedup geomean) must land inside a documented `[lo, hi]` band
//!   around the paper's value. Absolute bands are only meaningful at
//!   the scale they were calibrated at ([`CALIBRATED_SCALE`], the
//!   committed `results/` default), so band checks are *skipped* — not
//!   failed — when the sidecar records a different scale.
//! * **direction-of-trend assertions** — orderings and monotonicities
//!   that must hold at *any* scale: the unit beats the CPU on every
//!   benchmark, mark accelerates more than sweep, sweeper scaling
//!   rises to 4 lanes, the mark-bit cache filters more as it grows,
//!   compression halves spill traffic, the PTW dominates a shared
//!   cache. These are encoded as margins (`measured` is the worst-case
//!   margin, the band requires it positive).
//!
//! The report is byte-deterministic: checks are evaluated and emitted
//! in the canonical [`FIGURES`] order whatever order the caller asked
//! for, nothing host-measured is recorded, and the inputs themselves
//! are pacing- and `--jobs`-independent. `experiments --calibrate`
//! exits `4` on any failed check (see the CLI contract in
//! EXPERIMENTS.md); `ci.sh` runs it against the committed `results/`.

use std::fmt::Write as _;
use std::path::Path;

use crate::json;

/// Schema tag written into every calibration report.
pub const CALIB_SCHEMA: &str = "tracegc-calib-v1";

/// The workload scale the absolute tolerance bands were calibrated at —
/// the default scale of the committed `results/` run. Band checks
/// evaluated against a run at any other scale report `skipped`.
pub const CALIBRATED_SCALE: f64 = 0.25;

/// The figures the calibration suite covers, in canonical (paper)
/// order. Reports always list checks in this order.
pub const FIGURES: &[&str] = &[
    "table1", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
];

/// One check's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Measured value inside the band.
    Pass,
    /// Outside the band, or an input needed to compute it was missing
    /// or malformed (a calibration run must see every input it asks
    /// for).
    Fail,
    /// Not applicable to this run (band calibrated at a different
    /// scale, or the trend's precondition — e.g. any spill traffic at
    /// all — did not arise).
    Skipped,
}

impl Status {
    /// The status as it appears in the JSON report.
    pub fn name(&self) -> &'static str {
        match self {
            Status::Pass => "pass",
            Status::Fail => "fail",
            Status::Skipped => "skipped",
        }
    }
}

/// One evaluated check.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// Stable check id, `<figure>.<name>`.
    pub id: &'static str,
    /// The figure the check belongs to.
    pub figure: &'static str,
    /// What the check asserts, in paper terms.
    pub description: &'static str,
    /// The paper's reported value, when it reports one.
    pub paper: Option<f64>,
    /// Inclusive lower bound on `measured`.
    pub lo: f64,
    /// Inclusive upper bound on `measured` (`None` = unbounded).
    pub hi: Option<f64>,
    /// The measured value, when it could be computed.
    pub measured: Option<f64>,
    /// Verdict.
    pub status: Status,
    /// Why, for `fail`/`skipped`.
    pub reason: Option<String>,
}

/// A full calibration report.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibReport {
    /// Figures evaluated, in canonical order.
    pub figures: Vec<&'static str>,
    /// Every check, in canonical order.
    pub checks: Vec<CheckResult>,
}

impl CalibReport {
    /// `true` when no check failed (skips are not failures).
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.status != Status::Fail)
    }

    /// Counts by status: (passed, failed, skipped).
    pub fn tally(&self) -> (usize, usize, usize) {
        let count = |s: Status| self.checks.iter().filter(|c| c.status == s).count();
        (
            count(Status::Pass),
            count(Status::Fail),
            count(Status::Skipped),
        )
    }

    /// Renders the report as deterministic, pretty-printed JSON
    /// (schema [`CALIB_SCHEMA`]). Contains nothing host-measured, so
    /// two evaluations of the same inputs are byte-identical.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(v) => num(v),
            None => "null".to_string(),
        };
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json::escape(CALIB_SCHEMA));
        let _ = writeln!(s, "  \"calibrated_scale\": {},", num(CALIBRATED_SCALE));
        let _ = write!(s, "  \"figures\": [");
        for (i, f) in self.figures.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json::escape(f));
        }
        s.push_str("],\n");
        s.push_str("  \"checks\": [");
        for (i, c) in self.checks.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    {{\"id\": {}, \"figure\": {}, \"description\": {}, \
                 \"paper\": {}, \"lo\": {}, \"hi\": {}, \"measured\": {}, \
                 \"status\": {}, \"reason\": {}}}",
                json::escape(c.id),
                json::escape(c.figure),
                json::escape(c.description),
                opt(c.paper),
                num(c.lo),
                opt(c.hi),
                opt(c.measured),
                json::escape(c.status.name()),
                match &c.reason {
                    Some(r) => json::escape(r),
                    None => "null".to_string(),
                },
            );
        }
        s.push_str(if self.checks.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        let (passed, failed, skipped) = self.tally();
        let _ = writeln!(s, "  \"summary\": {{");
        let _ = writeln!(s, "    \"checks\": {},", self.checks.len());
        let _ = writeln!(s, "    \"passed\": {passed},");
        let _ = writeln!(s, "    \"failed\": {failed},");
        let _ = writeln!(s, "    \"skipped\": {skipped},");
        let _ = writeln!(
            s,
            "    \"pass\": {}",
            if self.passed() { "true" } else { "false" }
        );
        s.push_str("  }\n}\n");
        s
    }
}

/// Formats a float as JSON (same convention as the metrics sidecars).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

/// Writes `report` to `<dir>/calibration.json`; returns the path.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_calibration(dir: &Path, report: &CalibReport) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("calibration.json");
    std::fs::write(&path, report.to_json())?;
    Ok(path)
}

// ---------------------------------------------------------------------
// The paper-number table.
//
// Band values (`lo`/`hi`) document, per figure, how far the scaled-down
// simulator may sit from the paper's reported number before the build
// fails; the rationale for each width lives in DESIGN.md §9 and the
// paper-vs-measured tables of EXPERIMENTS.md. Trend checks carry the
// margin bound instead (usually "strictly positive").
// ---------------------------------------------------------------------

/// What a check compares.
#[derive(Debug, Clone, Copy)]
pub enum Kind {
    /// Absolute band around the paper's number; only meaningful at
    /// [`CALIBRATED_SCALE`], skipped elsewhere.
    Band,
    /// Direction-of-trend margin; holds at any scale.
    Trend,
}

/// A static check specification: the executable row of the paper table.
#[derive(Debug, Clone, Copy)]
pub struct CheckSpec {
    /// Stable id, `<figure>.<name>`.
    pub id: &'static str,
    /// Owning figure.
    pub figure: &'static str,
    /// What it asserts.
    pub description: &'static str,
    /// The paper's reported value, if it reports one.
    pub paper: Option<f64>,
    /// Inclusive bounds on the measured value / margin.
    pub lo: f64,
    /// Upper bound; `None` = unbounded above.
    pub hi: Option<f64>,
    /// Band (calibrated-scale only) or trend (any scale).
    pub kind: Kind,
}

/// Every calibration check, in canonical report order.
pub const CHECKS: &[CheckSpec] = &[
    // Table I — SoC configuration (scale-independent; exact by
    // construction, so bands are point intervals).
    CheckSpec {
        id: "table1.l2_over_l1",
        figure: "table1",
        description: "L2 capacity over L1 D-cache capacity (256 KiB / 16 KiB)",
        paper: Some(16.0),
        lo: 16.0,
        hi: Some(16.0),
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "table1.tlb_reach_per_entry_kib",
        figure: "table1",
        description: "TLB reach per entry = page size (128 KiB / 32 entries)",
        paper: Some(4.0),
        lo: 4.0,
        hi: Some(4.0),
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "table1.config_strings",
        figure: "table1",
        description: "fraction of Table I config rows matching the paper verbatim \
                      (FR-FCFS 16/8, open page, 14-14-14-47, 8 banks, cache sizes)",
        paper: Some(1.0),
        lo: 1.0,
        hi: Some(1.0),
        kind: Kind::Trend,
    },
    // Fig. 15 — mark & sweep speedups on DDR3 (the headline figure).
    CheckSpec {
        id: "fig15.mark_speedup_geomean",
        figure: "fig15",
        description: "geomean hw-vs-sw mark speedup, DDR3 (paper 4.2x)",
        paper: Some(4.2),
        lo: 3.0,
        hi: Some(8.4),
        kind: Kind::Band,
    },
    CheckSpec {
        id: "fig15.sweep_speedup_geomean",
        figure: "fig15",
        description: "geomean hw-vs-sw sweep speedup, DDR3 (paper 1.9x)",
        paper: Some(1.9),
        lo: 1.25,
        hi: Some(3.1),
        kind: Kind::Band,
    },
    CheckSpec {
        id: "fig15.total_speedup_geomean",
        figure: "fig15",
        description: "geomean overall GC speedup, DDR3 (paper 3.3x)",
        paper: Some(3.3),
        lo: 2.2,
        hi: Some(5.7),
        kind: Kind::Band,
    },
    CheckSpec {
        id: "fig15.unit_wins_every_bench",
        figure: "fig15",
        description: "worst per-benchmark speedup (mark, sweep and total) — the unit \
                      must win everywhere",
        paper: None,
        lo: 1.01,
        hi: None,
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "fig15.mark_exceeds_sweep",
        figure: "fig15",
        description: "worst per-benchmark (mark speedup - sweep speedup) — marking \
                      accelerates more than sweeping",
        paper: None,
        lo: 0.01,
        hi: None,
        kind: Kind::Trend,
    },
    // Fig. 16 — memory bandwidth over one pause.
    CheckSpec {
        id: "fig16.bandwidth_ratio",
        figure: "fig16",
        description: "unit avg GB/s over CPU avg GB/s across the pause (paper ~2.5x)",
        paper: Some(2.5),
        lo: 1.5,
        hi: Some(4.0),
        kind: Kind::Band,
    },
    CheckSpec {
        id: "fig16.unit_sustains_more_bandwidth",
        figure: "fig16",
        description: "unit average bandwidth exceeds the CPU's (ratio)",
        paper: None,
        lo: 1.1,
        hi: None,
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "fig16.unit_peak_exceeds_cpu_peak",
        figure: "fig16",
        description: "unit peak bandwidth exceeds the CPU's peak (ratio)",
        paper: None,
        lo: 1.01,
        hi: None,
        kind: Kind::Trend,
    },
    // Fig. 17 — potential performance on the 1-cycle 8 GB/s pipe.
    CheckSpec {
        id: "fig17.mark_speedup_geomean",
        figure: "fig17",
        description: "geomean mark speedup on the ideal memory pipe (paper 9.0x)",
        paper: Some(9.0),
        lo: 5.6,
        hi: Some(14.5),
        kind: Kind::Band,
    },
    CheckSpec {
        id: "fig17.exceeds_fig15",
        figure: "fig17",
        description: "ideal-pipe mark geomean over the DDR3 mark geomean — removing \
                      DRAM latency must speed the unit up",
        paper: None,
        lo: 1.05,
        hi: None,
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "fig17.issue_interval_cycles",
        figure: "fig17",
        description: "mean cycles between unit memory requests on the pipe (paper \
                      8.66; ours issues smaller, more frequent requests)",
        paper: Some(8.66),
        lo: 3.0,
        hi: Some(10.0),
        kind: Kind::Band,
    },
    // Fig. 18 — cache partitioning (forces its own workload scale, so
    // both checks are scale-free trends).
    CheckSpec {
        id: "fig18.ptw_dominates_shared",
        figure: "fig18",
        description: "minimum PTW share of shared-cache requests, % (paper ~2/3)",
        paper: Some(66.7),
        lo: 50.0,
        hi: Some(100.0),
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "fig18.workers_dominate_partitioned",
        figure: "fig18",
        description: "minimum marker+tracer share of memory requests after \
                      partitioning, %",
        paper: None,
        lo: 60.0,
        hi: Some(100.0),
        kind: Kind::Trend,
    },
    // Fig. 19 — mark-queue sizing and spill compression.
    CheckSpec {
        id: "fig19.compression_halves_spill",
        figure: "fig19",
        description: "uncompressed over compressed spill writes at the smallest \
                      queue (paper: compression halves spill traffic)",
        paper: Some(2.0),
        lo: 1.3,
        hi: None,
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "fig19.spill_fraction_small",
        figure: "fig19",
        description: "worst-case spill requests as % of all memory requests \
                      (paper ~2%)",
        paper: Some(2.0),
        lo: 0.0,
        hi: Some(6.0),
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "fig19.spill_drops_at_large_queue",
        figure: "fig19",
        description: "spill writes at the largest queue over the smallest (a queue \
                      that fits the frontier stops spilling)",
        paper: None,
        lo: 0.0,
        hi: Some(0.5),
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "fig19.mark_time_flat",
        figure: "fig19",
        description: "max/min mark time across a 65x queue-size range (paper: \
                      nearly flat)",
        paper: Some(1.0),
        lo: 1.0,
        hi: Some(1.25),
        kind: Kind::Band,
    },
    // Fig. 20 — block-sweeper scaling.
    CheckSpec {
        id: "fig20.scaling_to_four",
        figure: "fig20",
        description: "worst per-benchmark consecutive speedup margin from 1 to 4 \
                      sweepers — scaling must rise monotonically",
        paper: None,
        lo: 1e-6,
        hi: None,
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "fig20.four_sweeper_speedup",
        figure: "fig20",
        description: "geomean speedup with 4 sweepers (paper 2-3x; ours runs hotter)",
        paper: Some(2.5),
        lo: 1.8,
        hi: Some(6.0),
        kind: Kind::Band,
    },
    CheckSpec {
        id: "fig20.contention_at_eight",
        figure: "fig20",
        description: "worst per-benchmark (4-sweeper - 8-sweeper) speedup margin — \
                      DRAM row conflicts must bite by 8 lanes (scale-sensitive, \
                      checked at the calibrated scale only)",
        paper: None,
        lo: 1e-6,
        hi: None,
        kind: Kind::Band,
    },
    // Fig. 21 — mark-bit cache.
    CheckSpec {
        id: "fig21.hot_set_exists",
        figure: "fig21",
        description: "objects receiving >=16 mark accesses (the Zipf hot set the \
                      cache exploits)",
        paper: None,
        lo: 1.0,
        hi: None,
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "fig21.filter_grows_with_cache",
        figure: "fig21",
        description: "worst consecutive increase of filtered mark ops as the cache \
                      grows, percentage points",
        paper: None,
        lo: 1e-6,
        hi: None,
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "fig21.reqs_per_ref_drops",
        figure: "fig21",
        description: "worst consecutive decrease of mark requests per reference as \
                      the cache grows",
        paper: None,
        lo: 1e-6,
        hi: None,
        kind: Kind::Trend,
    },
    CheckSpec {
        id: "fig21.largest_cache_filter",
        figure: "fig21",
        description: "% of mark ops filtered by the largest cache (paper: a small \
                      cache captures ~10%)",
        paper: Some(10.0),
        lo: 4.0,
        hi: Some(15.0),
        kind: Kind::Band,
    },
    CheckSpec {
        id: "fig21.mark_time_flat",
        figure: "fig21",
        description: "max/min mark time across cache sizes (paper: no substantial \
                      effect at DDR3 bandwidth)",
        paper: Some(1.0),
        lo: 1.0,
        hi: Some(1.15),
        kind: Kind::Band,
    },
];

// ---------------------------------------------------------------------
// Input loading.
// ---------------------------------------------------------------------

/// A loaded CSV table.
struct Csv {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    fn load(dir: &Path, name: &str) -> Result<Csv, String> {
        let path = dir.join(name);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("missing input {}: {e}", path.display()))?;
        let mut lines = text.lines();
        let headers = split_csv_line(lines.next().ok_or_else(|| format!("{name}: empty CSV"))?);
        let rows: Vec<Vec<String>> = lines.map(split_csv_line).collect();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != headers.len() {
                return Err(format!(
                    "{name}: row {} has {} cells, header has {}",
                    i + 1,
                    r.len(),
                    headers.len()
                ));
            }
        }
        Ok(Csv { headers, rows })
    }

    fn col_index(&self, header: &str) -> Result<usize, String> {
        self.headers
            .iter()
            .position(|h| h == header)
            .ok_or_else(|| format!("missing CSV column '{header}'"))
    }

    /// Numeric column, one value per row; `skip_last` drops trailing
    /// summary rows (e.g. the geomean line).
    fn num_col(&self, header: &str, skip_last: usize) -> Result<Vec<f64>, String> {
        let idx = self.col_index(header)?;
        let end = self.rows.len().saturating_sub(skip_last);
        self.rows[..end]
            .iter()
            .map(|r| parse_num(&r[idx]).ok_or_else(|| format!("bad number in '{header}'")))
            .collect()
    }

    /// The value cell of a `parameter,value`-style row.
    fn lookup(&self, key: &str) -> Option<&str> {
        self.rows
            .iter()
            .find(|r| r.first().map(String::as_str) == Some(key))
            .and_then(|r| r.get(1))
            .map(String::as_str)
    }
}

/// Splits one CSV line, honouring the double-quote escaping
/// `Table::to_csv` emits.
fn split_csv_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if cur.is_empty() => quoted = true,
            ',' if !quoted => {
                cells.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    cells.push(cur);
    cells
}

/// Parses a cell like `6.92x`, `59%`, or `3.14` to a float.
fn parse_num(cell: &str) -> Option<f64> {
    cell.trim().trim_end_matches(['x', '%']).parse::<f64>().ok()
}

/// The `scale` gauge recorded in `<figure>.metrics.json`.
fn sidecar_scale(dir: &Path, figure: &str) -> Result<f64, String> {
    let path = dir.join(format!("{figure}.metrics.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("missing sidecar {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{figure}.metrics.json: {e}"))?;
    doc.get("gauges")
        .and_then(|g| g.get("scale"))
        .and_then(json::Json::as_f64)
        .ok_or_else(|| format!("{figure}.metrics.json: no scale gauge"))
}

/// A named gauge from `<figure>.metrics.json`.
fn sidecar_gauge(dir: &Path, figure: &str, gauge: &str) -> Result<f64, String> {
    let path = dir.join(format!("{figure}.metrics.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("missing sidecar {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{figure}.metrics.json: {e}"))?;
    doc.get("gauges")
        .and_then(|g| g.get(gauge))
        .and_then(json::Json::as_f64)
        .ok_or_else(|| format!("{figure}.metrics.json: no gauge '{gauge}'"))
}

fn geomean(vs: &[f64]) -> Option<f64> {
    if vs.is_empty() || vs.iter().any(|v| *v <= 0.0) {
        return None;
    }
    Some((vs.iter().map(|v| v.ln()).sum::<f64>() / vs.len() as f64).exp())
}

/// Worst (minimum) consecutive difference `v[i+1] - v[i]`.
fn min_consecutive_rise(vs: &[f64]) -> Option<f64> {
    vs.windows(2)
        .map(|w| w[1] - w[0])
        .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.min(d))))
}

// ---------------------------------------------------------------------
// Evaluation.
// ---------------------------------------------------------------------

/// How one measured quantity came out: a value, a reason to skip, or a
/// reason to fail.
enum Measured {
    Value(f64),
    Skip(String),
    Err(String),
}

impl From<Result<f64, String>> for Measured {
    fn from(r: Result<f64, String>) -> Self {
        match r {
            Ok(v) => Measured::Value(v),
            Err(e) => Measured::Err(e),
        }
    }
}

fn spec_for(id: &str) -> &'static CheckSpec {
    CHECKS
        .iter()
        .find(|c| c.id == id)
        .unwrap_or_else(|| panic!("unknown check id {id}"))
}

/// Resolves one check: applies the scale gate for bands, then the band
/// itself.
fn resolve(id: &str, scale: &Result<f64, String>, measured: Measured) -> CheckResult {
    let spec = spec_for(id);
    let mut result = CheckResult {
        id: spec.id,
        figure: spec.figure,
        description: spec.description,
        paper: spec.paper,
        lo: spec.lo,
        hi: spec.hi,
        measured: None,
        status: Status::Pass,
        reason: None,
    };
    if matches!(spec.kind, Kind::Band) {
        match scale {
            Ok(s) if *s != CALIBRATED_SCALE => {
                result.status = Status::Skipped;
                result.reason = Some(format!(
                    "band calibrated at scale {CALIBRATED_SCALE}; run recorded scale {s}"
                ));
                return result;
            }
            Ok(_) => {}
            Err(e) => {
                result.status = Status::Fail;
                result.reason = Some(e.clone());
                return result;
            }
        }
    }
    match measured {
        Measured::Err(e) => {
            result.status = Status::Fail;
            result.reason = Some(e);
        }
        Measured::Skip(why) => {
            result.status = Status::Skipped;
            result.reason = Some(why);
        }
        Measured::Value(v) => {
            result.measured = Some(v);
            let above = result.hi.is_some_and(|hi| v > hi);
            if v < result.lo || above {
                result.status = Status::Fail;
                result.reason = Some(format!(
                    "measured {v:.4} outside [{}, {}]",
                    result.lo,
                    result.hi.map_or("inf".to_string(), |h| format!("{h}")),
                ));
            }
        }
    }
    result
}

fn eval_table1(dir: &Path) -> Vec<CheckResult> {
    let scale = sidecar_scale(dir, "table1");
    let l2_over_l1 = (|| {
        let l1 = sidecar_gauge(dir, "table1", "l1d_kib")?;
        let l2 = sidecar_gauge(dir, "table1", "l2_kib")?;
        if l1 <= 0.0 {
            return Err("l1d_kib gauge is zero".into());
        }
        Ok(l2 / l1)
    })();
    let cpu = Csv::load(dir, "table1_0.csv");
    let mem = Csv::load(dir, "table1_1.csv");
    let tlb_reach = (|| {
        let row = cpu
            .as_ref()
            .map_err(Clone::clone)?
            .lookup("ITLB/DTLB reach")
            .ok_or_else(|| "table1_0.csv: no 'ITLB/DTLB reach' row".to_string())?;
        // "128 KiB (32 entries each)" -> 128 / 32.
        let nums: Vec<f64> = row
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.parse().ok())
            .collect();
        match nums.as_slice() {
            [reach, entries, ..] if *entries > 0.0 => Ok(reach / entries),
            _ => Err(format!("table1_0.csv: unparsable TLB row '{row}'")),
        }
    })();
    let config = (|| {
        let cpu = cpu.as_ref().map_err(Clone::clone)?;
        let mem = mem.as_ref().map_err(Clone::clone)?;
        let expectations: [(&Csv, &str, &str); 6] = [
            (cpu, "L1 caches", "16 KiB"),
            (cpu, "L2 cache", "256 KiB"),
            (mem, "Memory access scheduler", "FrFcfs (16/8"),
            (mem, "Page policy", "Open"),
            (mem, "DRAM latencies (ns)", "14-14-14-47"),
            (mem, "Banks", "8"),
        ];
        let matched = expectations
            .iter()
            .filter(|(csv, key, want)| csv.lookup(key).is_some_and(|v| v.contains(want)))
            .count();
        Ok(matched as f64 / expectations.len() as f64)
    })();
    vec![
        resolve("table1.l2_over_l1", &scale, l2_over_l1.into()),
        resolve("table1.tlb_reach_per_entry_kib", &scale, tlb_reach.into()),
        resolve("table1.config_strings", &scale, config.into()),
    ]
}

fn eval_fig15(dir: &Path) -> Vec<CheckResult> {
    let scale = sidecar_scale(dir, "fig15");
    let csv = Csv::load(dir, "fig15.csv");
    // The last row is the geomean summary; per-bench columns skip it.
    let per_bench = |col: &str| -> Result<Vec<f64>, String> {
        csv.as_ref().map_err(Clone::clone)?.num_col(col, 1)
    };
    let worst_any = (|| {
        let mut worst = f64::INFINITY;
        for col in ["mark-speedup", "sweep-speedup", "total-speedup"] {
            for v in per_bench(col)? {
                worst = worst.min(v);
            }
        }
        Ok(worst)
    })();
    let mark_minus_sweep = (|| {
        let mark = per_bench("mark-speedup")?;
        let sweep = per_bench("sweep-speedup")?;
        Ok(mark
            .iter()
            .zip(&sweep)
            .map(|(m, s)| m - s)
            .fold(f64::INFINITY, f64::min))
    })();
    vec![
        resolve(
            "fig15.mark_speedup_geomean",
            &scale,
            sidecar_gauge(dir, "fig15", "mark_speedup_geomean").into(),
        ),
        resolve(
            "fig15.sweep_speedup_geomean",
            &scale,
            sidecar_gauge(dir, "fig15", "sweep_speedup_geomean").into(),
        ),
        resolve(
            "fig15.total_speedup_geomean",
            &scale,
            sidecar_gauge(dir, "fig15", "total_speedup_geomean").into(),
        ),
        resolve("fig15.unit_wins_every_bench", &scale, worst_any.into()),
        resolve("fig15.mark_exceeds_sweep", &scale, mark_minus_sweep.into()),
    ]
}

fn eval_fig16(dir: &Path) -> Vec<CheckResult> {
    let scale = sidecar_scale(dir, "fig16");
    let ratio_of = |num_gauge: &str, den_gauge: &str| -> Result<f64, String> {
        let n = sidecar_gauge(dir, "fig16", num_gauge)?;
        let d = sidecar_gauge(dir, "fig16", den_gauge)?;
        if d <= 0.0 {
            return Err(format!("gauge '{den_gauge}' is zero"));
        }
        Ok(n / d)
    };
    let avg = ratio_of("unit_avg_gbps", "cpu_avg_gbps");
    let peak = ratio_of("unit_peak_gbps", "cpu_peak_gbps");
    vec![
        resolve("fig16.bandwidth_ratio", &scale, avg.clone().into()),
        resolve("fig16.unit_sustains_more_bandwidth", &scale, avg.into()),
        resolve("fig16.unit_peak_exceeds_cpu_peak", &scale, peak.into()),
    ]
}

fn eval_fig17(dir: &Path) -> Vec<CheckResult> {
    let scale = sidecar_scale(dir, "fig17");
    let geomean_pipe = sidecar_gauge(dir, "fig17", "mark_speedup_geomean");
    let vs_fig15 = (|| {
        let pipe = sidecar_gauge(dir, "fig17", "mark_speedup_geomean")?;
        let ddr3 = sidecar_gauge(dir, "fig15", "mark_speedup_geomean")?;
        if ddr3 <= 0.0 {
            return Err("fig15 mark geomean is zero".into());
        }
        Ok(pipe / ddr3)
    })();
    let interval = (|| {
        let csv = Csv::load(dir, "fig17_1.csv")?;
        let vs = csv.num_col("cycles-between-reqs", 0)?;
        if vs.is_empty() {
            return Err("fig17_1.csv has no rows".into());
        }
        Ok(vs.iter().sum::<f64>() / vs.len() as f64)
    })();
    vec![
        resolve("fig17.mark_speedup_geomean", &scale, geomean_pipe.into()),
        resolve("fig17.exceeds_fig15", &scale, vs_fig15.into()),
        resolve("fig17.issue_interval_cycles", &scale, interval.into()),
    ]
}

fn eval_fig18(dir: &Path) -> Vec<CheckResult> {
    let scale = sidecar_scale(dir, "fig18");
    let min_share = |file: &str, col: &str| -> Result<f64, String> {
        let csv = Csv::load(dir, file)?;
        let vs = csv.num_col(col, 0)?;
        vs.into_iter()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
            .ok_or_else(|| format!("{file} has no rows"))
    };
    vec![
        resolve(
            "fig18.ptw_dominates_shared",
            &scale,
            min_share("fig18_0.csv", "ptw-share").into(),
        ),
        resolve(
            "fig18.workers_dominate_partitioned",
            &scale,
            min_share("fig18_1.csv", "marker+tracer-share").into(),
        ),
    ]
}

fn eval_fig19(dir: &Path) -> Vec<CheckResult> {
    let scale = sidecar_scale(dir, "fig19");
    let csv = Csv::load(dir, "fig19.csv");
    // Row accessors over (size-kb, variant) pairs.
    let writes_of = |variant: &str| -> Result<Vec<(f64, f64)>, String> {
        let csv = csv.as_ref().map_err(Clone::clone)?;
        let size_i = csv.col_index("size-kb")?;
        let var_i = csv.col_index("variant")?;
        let w_i = csv.col_index("spill-writes")?;
        let mut out = Vec::new();
        for r in &csv.rows {
            if r[var_i] == variant {
                let size = parse_num(&r[size_i]).ok_or("bad size-kb")?;
                let w = parse_num(&r[w_i]).ok_or("bad spill-writes")?;
                out.push((size, w));
            }
        }
        if out.is_empty() {
            return Err(format!("fig19.csv: no '{variant}' rows"));
        }
        Ok(out)
    };
    let compression = match (writes_of("TQ=128"), writes_of("compressed")) {
        (Ok(tq), Ok(comp)) => {
            let (_, tq0) = tq[0];
            let (_, comp0) = comp[0];
            if tq0 == 0.0 {
                Measured::Skip("no spill traffic at this scale".into())
            } else if comp0 == 0.0 {
                // Compression eliminated spilling outright: trivially
                // at least the required halving.
                Measured::Value(f64::MAX)
            } else {
                Measured::Value(tq0 / comp0)
            }
        }
        (Err(e), _) | (_, Err(e)) => Measured::Err(e),
    };
    let drop_at_large = match writes_of("TQ=128") {
        Ok(tq) => {
            let (_, first) = tq[0];
            let (_, last) = tq[tq.len() - 1];
            if first == 0.0 {
                Measured::Skip("no spill traffic at this scale".into())
            } else {
                Measured::Value(last / first)
            }
        }
        Err(e) => Measured::Err(e),
    };
    let spill_frac = (|| {
        let csv = csv.as_ref().map_err(Clone::clone)?;
        let vs = csv.num_col("spill-%-of-reqs", 0)?;
        Ok(vs.into_iter().fold(0.0, f64::max))
    })();
    let flat = (|| {
        let csv = csv.as_ref().map_err(Clone::clone)?;
        let vs = csv.num_col("mark-ms", 0)?;
        let max = vs.iter().copied().fold(f64::MIN, f64::max);
        let min = vs.iter().copied().fold(f64::MAX, f64::min);
        if min <= 0.0 {
            return Err("fig19.csv: zero mark time".into());
        }
        Ok(max / min)
    })();
    vec![
        resolve("fig19.compression_halves_spill", &scale, compression),
        resolve("fig19.spill_fraction_small", &scale, spill_frac.into()),
        resolve("fig19.spill_drops_at_large_queue", &scale, drop_at_large),
        resolve("fig19.mark_time_flat", &scale, flat.into()),
    ]
}

fn eval_fig20(dir: &Path) -> Vec<CheckResult> {
    let scale = sidecar_scale(dir, "fig20");
    let csv = Csv::load(dir, "fig20.csv");
    let lane_cols = ["1", "2", "3", "4"];
    let rise = (|| {
        let csv = csv.as_ref().map_err(Clone::clone)?;
        let mut worst = f64::INFINITY;
        for row in 0..csv.rows.len() {
            let mut lane_speedups = Vec::new();
            for col in lane_cols {
                let idx = csv.col_index(col)?;
                lane_speedups.push(parse_num(&csv.rows[row][idx]).ok_or("bad fig20 speedup cell")?);
            }
            if let Some(m) = min_consecutive_rise(&lane_speedups) {
                worst = worst.min(m);
            }
        }
        if worst == f64::INFINITY {
            return Err("fig20.csv has no rows".into());
        }
        Ok(worst)
    })();
    let four = (|| {
        let csv = csv.as_ref().map_err(Clone::clone)?;
        let vs = csv.num_col("4", 0)?;
        geomean(&vs).ok_or_else(|| "fig20.csv: non-positive 4-sweeper speedup".into())
    })();
    let contention = (|| {
        let csv = csv.as_ref().map_err(Clone::clone)?;
        let four = csv.num_col("4", 0)?;
        let eight = csv.num_col("8", 0)?;
        Ok(four
            .iter()
            .zip(&eight)
            .map(|(f, e)| f - e)
            .fold(f64::INFINITY, f64::min))
    })();
    vec![
        resolve("fig20.scaling_to_four", &scale, rise.into()),
        resolve("fig20.four_sweeper_speedup", &scale, four.into()),
        resolve("fig20.contention_at_eight", &scale, contention.into()),
    ]
}

fn eval_fig21(dir: &Path) -> Vec<CheckResult> {
    let scale = sidecar_scale(dir, "fig21");
    let hot = (|| {
        let csv = Csv::load(dir, "fig21_0.csv")?;
        let acc_i = csv.col_index("accesses")?;
        let obj_i = csv.col_index("objects")?;
        let row = csv
            .rows
            .iter()
            .find(|r| r[acc_i] == ">=16")
            .ok_or("fig21_0.csv: no '>=16' row")?;
        parse_num(&row[obj_i]).ok_or_else(|| "fig21_0.csv: bad objects cell".into())
    })();
    let sweep = Csv::load(dir, "fig21_1.csv");
    let filtered = (|| {
        let csv = sweep.as_ref().map_err(Clone::clone)?;
        csv.num_col("filtered-%", 0)
    })();
    let grow = match &filtered {
        Ok(vs) => min_consecutive_rise(vs)
            .map(Measured::Value)
            .unwrap_or_else(|| Measured::Err("fig21_1.csv: fewer than 2 rows".into())),
        Err(e) => Measured::Err(e.clone()),
    };
    let reqs_drop = (|| {
        let csv = sweep.as_ref().map_err(Clone::clone)?;
        let vs = csv.num_col("mark-reqs-per-ref", 0)?;
        // Falling series: negate and reuse the rise helper.
        let neg: Vec<f64> = vs.iter().map(|v| -v).collect();
        min_consecutive_rise(&neg).ok_or_else(|| "fig21_1.csv: fewer than 2 rows".into())
    })();
    let largest = match &filtered {
        Ok(vs) => vs
            .last()
            .copied()
            .map(Measured::Value)
            .unwrap_or_else(|| Measured::Err("fig21_1.csv: no rows".into())),
        Err(e) => Measured::Err(e.clone()),
    };
    let flat = (|| {
        let csv = sweep.as_ref().map_err(Clone::clone)?;
        let vs = csv.num_col("mark-ms", 0)?;
        let max = vs.iter().copied().fold(f64::MIN, f64::max);
        let min = vs.iter().copied().fold(f64::MAX, f64::min);
        if min <= 0.0 {
            return Err("fig21_1.csv: zero mark time".into());
        }
        Ok(max / min)
    })();
    vec![
        resolve("fig21.hot_set_exists", &scale, hot.into()),
        resolve("fig21.filter_grows_with_cache", &scale, grow),
        resolve("fig21.reqs_per_ref_drops", &scale, reqs_drop.into()),
        resolve("fig21.largest_cache_filter", &scale, largest),
        resolve("fig21.mark_time_flat", &scale, flat.into()),
    ]
}

/// Evaluates the calibration suite for `figures` against the artifacts
/// in `dir`, in canonical order regardless of the order (or
/// duplication) of `figures`. The report is a pure function of the
/// input files: evaluating twice, in any request order, under any
/// `--jobs` value or scheduler pacing, yields byte-identical JSON.
///
/// # Errors
///
/// An unknown figure name (one not in [`FIGURES`]); individual missing
/// or malformed inputs are reported per check, as failures, not as
/// evaluation errors.
pub fn evaluate(dir: &Path, figures: &[&str]) -> Result<CalibReport, String> {
    if let Some(bad) = figures.iter().find(|f| !FIGURES.contains(f)) {
        return Err(format!(
            "unknown calibration figure '{bad}' (known: {})",
            FIGURES.join(" ")
        ));
    }
    // Canonicalize: FIGURES order, duplicates collapsed.
    let ordered: Vec<&'static str> = FIGURES
        .iter()
        .copied()
        .filter(|f| figures.contains(f))
        .collect();
    let mut checks = Vec::new();
    for figure in &ordered {
        checks.extend(match *figure {
            "table1" => eval_table1(dir),
            "fig15" => eval_fig15(dir),
            "fig16" => eval_fig16(dir),
            "fig17" => eval_fig17(dir),
            "fig18" => eval_fig18(dir),
            "fig19" => eval_fig19(dir),
            "fig20" => eval_fig20(dir),
            "fig21" => eval_fig21(dir),
            other => unreachable!("figure {other} validated against FIGURES"),
        });
    }
    Ok(CalibReport {
        figures: ordered,
        checks,
    })
}

/// Evaluates every figure in [`FIGURES`].
///
/// # Errors
///
/// See [`evaluate`].
pub fn evaluate_all(dir: &Path) -> Result<CalibReport, String> {
    evaluate(dir, FIGURES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_check_id_is_unique_and_prefixed_by_its_figure() {
        for (i, c) in CHECKS.iter().enumerate() {
            assert!(
                c.id.starts_with(&format!("{}.", c.figure)),
                "{} not prefixed by {}",
                c.id,
                c.figure
            );
            assert!(FIGURES.contains(&c.figure), "{} has unknown figure", c.id);
            assert!(
                !CHECKS[..i].iter().any(|p| p.id == c.id),
                "duplicate check id {}",
                c.id
            );
            if let Some(hi) = c.hi {
                assert!(c.lo <= hi, "{}: lo > hi", c.id);
            }
            if let Some(paper) = c.paper {
                // A paper value outside its own band would make the
                // table self-contradictory. (Trend margins with paper
                // values use the band to encode the reproduction's
                // looser floor, so only bands are pinned.)
                if matches!(c.kind, Kind::Band) {
                    assert!(
                        paper >= c.lo / 2.0 && c.hi.is_none_or(|h| paper <= h * 2.0),
                        "{}: paper value {paper} wildly outside band",
                        c.id
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_figure_is_rejected() {
        let err = evaluate(Path::new("/nonexistent"), &["fig99"]).unwrap_err();
        assert!(err.contains("fig99"));
    }

    #[test]
    fn missing_inputs_fail_rather_than_pass() {
        let dir = std::env::temp_dir().join(format!("tracegc-calib-miss-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let report = evaluate(&dir, &["fig15"]).unwrap();
        assert!(!report.passed());
        assert!(
            report.checks.iter().all(|c| c.status == Status::Fail),
            "{report:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_json_is_valid_and_deterministic() {
        let report = CalibReport {
            figures: vec!["fig15"],
            checks: vec![CheckResult {
                id: "fig15.mark_speedup_geomean",
                figure: "fig15",
                description: "d",
                paper: Some(4.2),
                lo: 3.0,
                hi: Some(8.4),
                measured: Some(6.92),
                status: Status::Pass,
                reason: None,
            }],
        };
        let json_text = report.to_json();
        crate::json::parse(&json_text).unwrap();
        assert_eq!(json_text, report.to_json());
        assert!(json_text.contains("\"schema\": \"tracegc-calib-v1\""));
        assert!(json_text.contains("\"pass\": true"));
        assert!(report.passed());
    }

    #[test]
    fn out_of_band_measurement_fails() {
        let r = resolve(
            "fig15.mark_speedup_geomean",
            &Ok(CALIBRATED_SCALE),
            Measured::Value(100.0),
        );
        assert_eq!(r.status, Status::Fail);
        assert!(r.reason.unwrap().contains("outside"));
        let r = resolve(
            "fig15.mark_speedup_geomean",
            &Ok(CALIBRATED_SCALE),
            Measured::Value(4.2),
        );
        assert_eq!(r.status, Status::Pass);
    }

    #[test]
    fn band_checks_skip_off_scale_but_trends_do_not() {
        let band = resolve(
            "fig15.mark_speedup_geomean",
            &Ok(0.015),
            Measured::Value(4.2),
        );
        assert_eq!(band.status, Status::Skipped);
        let trend = resolve(
            "fig15.unit_wins_every_bench",
            &Ok(0.015),
            Measured::Value(2.0),
        );
        assert_eq!(trend.status, Status::Pass);
        // A band check with no readable scale is a failure, not a skip.
        let noscale = resolve(
            "fig15.mark_speedup_geomean",
            &Err("missing sidecar".into()),
            Measured::Value(4.2),
        );
        assert_eq!(noscale.status, Status::Fail);
    }

    #[test]
    fn csv_split_honours_quotes() {
        assert_eq!(split_csv_line(r#"a,"b,c",d"#), vec!["a", "b,c", "d"]);
        assert_eq!(
            split_csv_line(r#""say ""hi""",x"#),
            vec![r#"say "hi""#, "x"]
        );
        assert_eq!(parse_num("6.92x"), Some(6.92));
        assert_eq!(parse_num("59%"), Some(59.0));
        assert_eq!(parse_num("-"), None);
    }

    #[test]
    fn helpers() {
        let g = geomean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert!(geomean(&[]).is_none());
        assert!(geomean(&[1.0, 0.0]).is_none());
        assert_eq!(min_consecutive_rise(&[1.0, 3.0, 4.0]), Some(1.0));
        assert_eq!(min_consecutive_rise(&[1.0]), None);
    }
}
