//! Regression test for a spill-engine deadlock: with compressed entries,
//! one spill chunk (16 entries) exceeded the tracer-throttle level (12),
//! so `outQ` could park at 12–15 entries — permanently throttling the
//! tracer — while the spill engine waited for a full chunk and the
//! marker's blocked deliveries spun. The fix spills partial chunks as
//! soon as the throttle asserts (the paper's "by prioritizing memory
//! requests from outQ, we avoid deadlock", §V-C).

use tracegc::heap::verify::check_marks_match_reachability;
use tracegc::heap::LayoutKind;
use tracegc::hwgc::{GcUnitConfig, TraversalUnit};
use tracegc::mem::MemSystem;
use tracegc::workloads::generate::generate_heap;
use tracegc::workloads::spec::DACAPO;

#[test]
fn degenerate_queue_configs_always_drain() {
    let spec = DACAPO[2].scaled(0.02);
    let configs = [
        GcUnitConfig {
            markq_entries: 16,
            markq_side: 16,
            ..GcUnitConfig::default()
        },
        // The deadlocking configuration: compressed entries + side
        // queues of exactly one chunk + a 2-entry tracer queue.
        GcUnitConfig {
            markq_entries: 16,
            markq_side: 16,
            compress: true,
            tracer_queue: 2,
            ..GcUnitConfig::default()
        },
        GcUnitConfig {
            markq_entries: 16,
            markq_side: 17, // odd side size, compressed
            compress: true,
            tracer_queue: 1,
            marker_slots: 2,
            ..GcUnitConfig::default()
        },
        GcUnitConfig {
            marker_slots: 1,
            tracer_queue: 1,
            ..GcUnitConfig::default()
        },
    ];
    for (i, cfg) in configs.into_iter().enumerate() {
        let mut w = generate_heap(&spec, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(cfg, &mut w.heap);
        let r = unit.run_mark(&mut w.heap, &mut mem, 0);
        assert!(r.cycles() > 0, "config {i}");
        check_marks_match_reachability(&w.heap).unwrap_or_else(|e| panic!("config {i}: {e}"));
    }
}
