//! The software collector's phases as scheduled engines.
//!
//! [`CpuMarkEngine`] and [`CpuSweepEngine`] wrap the in-order core's
//! mark and sweep loops as [`tracegc_sim::sched::Engine`]s over the
//! shared [`SocCtx`], so the CPU baseline can share a clock and a
//! memory system with the accelerator engines (e.g. the dual-run
//! experiments, or a CPU collector racing a hardware sweeper). Each
//! step performs one unit of work — one root scan, one object visit,
//! one cell classification — on the core's *own* clock; the engine
//! stalls whenever the core clock is ahead of the shared one, so the
//! scheduled form replays the historical inline loops cycle-for-cycle
//! (proven by `tests/engine_equivalence.rs`).
//!
//! Both engines self-account into the core's per-phase ledger, so the
//! scheduler's `note_busy`/`note_stall` charges stay the default
//! no-ops and `stalls.total() == cycles` holds exactly as before.

use std::collections::VecDeque;

use tracegc_heap::layout::{
    bidi, conv, decode_cell_start, encode_free_cell_start, CellStart, Header, LayoutKind, WORD,
};
use tracegc_heap::{BlockInfo, Heap, ObjRef, SocCtx};
use tracegc_mem::MemSystem;
use tracegc_sim::sched::{Engine, Progress};
use tracegc_sim::{Cycle, StallAccounting, StallReason};

use crate::collector::{Cpu, PhaseResult};

/// Mark-phase control state: read the root count, scan each root slot,
/// then drain the software mark stack one object per step.
#[derive(Debug)]
enum MarkState {
    Start,
    Roots { i: u64, nroots: u64 },
    Drain,
}

/// The core's mark loop as a scheduled engine over `heaps[heap_idx]`.
///
/// Construction resets the core's per-phase ledger and snapshots its
/// clock as the phase start; [`into_result`](CpuMarkEngine::into_result)
/// yields the finished [`PhaseResult`] after the scheduler reports done.
#[derive(Debug)]
pub struct CpuMarkEngine<'a> {
    cpu: &'a mut Cpu,
    heap_idx: usize,
    state: MarkState,
    stack: Vec<ObjRef>,
    sp: u64,
    start: Cycle,
    result: PhaseResult,
    done: bool,
}

impl<'a> CpuMarkEngine<'a> {
    /// A mark phase on `cpu` over `heaps[heap_idx]`, starting at the
    /// core's current cycle.
    pub fn new(cpu: &'a mut Cpu, heap_idx: usize) -> Self {
        cpu.stalls = StallAccounting::default();
        let start = cpu.now;
        Self {
            cpu,
            heap_idx,
            state: MarkState::Start,
            stack: Vec::new(),
            sp: 0,
            start,
            result: PhaseResult::default(),
            done: false,
        }
    }

    /// The completed phase's result (after the scheduler reports done).
    pub fn into_result(self) -> PhaseResult {
        self.result
    }

    /// Visits one popped object: mark test, mark store, reference trace.
    fn visit(&mut self, heap: &mut Heap, mem: &mut MemSystem, obj: ObjRef) {
        let cpu = &mut *self.cpu;
        cpu.instr(cpu.cfg.instr_per_object);

        // Load the header; the mark-test branch *depends* on it, so
        // the in-order core stalls until the data arrives.
        let t = cpu.access(heap, mem, obj.addr(), false);
        cpu.wait(t);
        let pa = heap.va_to_pa(obj.addr());
        let old = Header::from_raw(heap.phys.read_u64(pa));
        if old.is_marked() {
            return;
        }
        // Store the mark (write-back absorbs it; no stall).
        heap.phys.write_u64(pa, old.with_mark().raw());
        cpu.access(heap, mem, obj.addr(), true);
        cpu.instr(1);
        self.result.work_items += 1;

        let nrefs = old.nrefs();
        match heap.layout() {
            LayoutKind::Bidirectional => {
                // Reference slots sit contiguously below the header.
                // An in-order core (ooo_window = 1) stalls on every
                // load-use pair; an out-of-order core overlaps up to
                // `ooo_window` outstanding ref loads.
                let window = cpu.cfg.ooo_window.max(1);
                let mut pending: VecDeque<(Cycle, u64, bool)> = VecDeque::with_capacity(window);
                for i in 0..nrefs {
                    cpu.instr(cpu.cfg.instr_per_ref);
                    let slot = bidi::ref_slot(obj, i);
                    let t = cpu.access(heap, mem, slot, false);
                    let raw = heap.read_va(slot);
                    pending.push_back((t, raw, cpu.last_access_walked));
                    self.result.refs_traced += 1;
                    if pending.len() >= window {
                        let (t, raw, walked) = pending.pop_front().expect("non-empty");
                        cpu.wait_tagged(t, walked);
                        if raw != 0 {
                            cpu.push(heap, mem, &mut self.stack, &mut self.sp, ObjRef::new(raw));
                        }
                    }
                }
                while let Some((t, raw, walked)) = pending.pop_front() {
                    cpu.wait_tagged(t, walked);
                    if raw != 0 {
                        cpu.push(heap, mem, &mut self.stack, &mut self.sp, ObjRef::new(raw));
                    }
                }
            }
            LayoutKind::Conventional => {
                // TIB pointer, then the offset table, then scattered
                // field loads — the two extra accesses of §IV-A.
                let tib_slot = conv::tib_slot(obj);
                let t = cpu.access(heap, mem, tib_slot, false);
                cpu.wait(t);
                let tib = heap.read_va(tib_slot);
                for i in 0..nrefs {
                    cpu.instr(cpu.cfg.instr_per_ref);
                    let off_va = tib + (1 + i as u64) * WORD;
                    let t = cpu.access(heap, mem, off_va, false);
                    cpu.wait(t);
                    let offset = heap.read_va(off_va) as u32;
                    let slot = conv::field_slot(obj, offset);
                    let t = cpu.access(heap, mem, slot, false);
                    cpu.wait(t);
                    let raw = heap.read_va(slot);
                    self.result.refs_traced += 1;
                    if raw != 0 {
                        cpu.push(heap, mem, &mut self.stack, &mut self.sp, ObjRef::new(raw));
                    }
                }
            }
        }
    }
}

impl<'a, 'c> Engine<SocCtx<'c>> for CpuMarkEngine<'a> {
    fn name(&self) -> &'static str {
        "cpu-mark"
    }

    fn step(&mut self, now: Cycle, ctx: &mut SocCtx<'c>) -> Progress {
        if self.done {
            return Progress::Done;
        }
        // The core clock runs ahead of the shared one within a step;
        // stall until the scheduler catches up so shared-memory
        // interleaving with other engines stays time-ordered.
        if self.cpu.now > now {
            return Progress::Stalled;
        }
        let SocCtx { mem, heaps, .. } = ctx;
        let heap = &mut *heaps[self.heap_idx];
        match self.state {
            MarkState::Start => {
                // The runtime scanned the roots into the hwgc space; the
                // software collector reads the count from there.
                let hwgc_base = heap.spaces().hwgc_base;
                let t = self.cpu.access(heap, mem, hwgc_base, false);
                self.cpu.wait(t);
                let nroots = heap.read_va(hwgc_base);
                self.state = MarkState::Roots { i: 0, nroots };
                Progress::Advanced
            }
            MarkState::Roots { i, nroots } if i < nroots => {
                let hwgc_base = heap.spaces().hwgc_base;
                let slot = hwgc_base + (1 + i) * WORD;
                let t = self.cpu.access(heap, mem, slot, false);
                self.cpu.wait(t);
                let raw = heap.read_va(slot);
                if raw != 0 {
                    self.cpu
                        .push(heap, mem, &mut self.stack, &mut self.sp, ObjRef::new(raw));
                }
                self.state = MarkState::Roots { i: i + 1, nroots };
                Progress::Advanced
            }
            MarkState::Roots { .. } => {
                self.state = MarkState::Drain;
                Progress::Advanced
            }
            MarkState::Drain => {
                let popped = {
                    let cpu = &mut *self.cpu;
                    cpu.pop(heap, mem, &mut self.stack, &mut self.sp)
                };
                match popped {
                    Some(obj) => {
                        self.visit(heap, mem, obj);
                        Progress::Advanced
                    }
                    None => {
                        self.result.cycles = self.cpu.now - self.start;
                        self.result.stalls = self.cpu.stalls;
                        self.done = true;
                        Progress::Done
                    }
                }
            }
        }
    }

    // Contract-honest: the engine stalls exactly while the self-clocked
    // core is ahead of the shared clock and acts the moment it catches
    // up, so `cpu.now` is both never late and never stale.
    fn next_event_at(&self) -> Option<Cycle> {
        Some(self.cpu.now)
    }

    fn stall_reason(&self, _now: Cycle) -> StallReason {
        // Only consulted when the core clock is ahead; the wait is the
        // tail of a memory access the core already charged itself.
        StallReason::MemLatency
    }

    fn ledger(&self) -> Option<StallAccounting> {
        Some(self.cpu.stalls)
    }
}

/// The core's sweep loop as a scheduled engine over `heaps[heap_idx]`:
/// one cell classification per step (block bookkeeping and the final
/// LOS/free-list finalization are untimed, exactly as in the historical
/// inline loop).
#[derive(Debug)]
pub struct CpuSweepEngine<'a> {
    cpu: &'a mut Cpu,
    heap_idx: usize,
    /// Block table snapshot, captured from the heap on the first step.
    blocks: Option<Vec<BlockInfo>>,
    bidx: usize,
    /// Cells remaining in the current block (visited high-to-low).
    remaining: u64,
    free_head: u64,
    free_cells: u64,
    start: Cycle,
    result: PhaseResult,
    done: bool,
}

impl<'a> CpuSweepEngine<'a> {
    /// A sweep phase on `cpu` over `heaps[heap_idx]`, starting at the
    /// core's current cycle.
    pub fn new(cpu: &'a mut Cpu, heap_idx: usize) -> Self {
        cpu.stalls = StallAccounting::default();
        let start = cpu.now;
        Self {
            cpu,
            heap_idx,
            blocks: None,
            bidx: 0,
            remaining: 0,
            free_head: 0,
            free_cells: 0,
            start,
            result: PhaseResult::default(),
            done: false,
        }
    }

    /// The completed phase's result (after the scheduler reports done).
    pub fn into_result(self) -> PhaseResult {
        self.result
    }

    /// Closes finished blocks (untimed bookkeeping) and positions
    /// `remaining` at the next block with cells, if any.
    fn advance_block(&mut self, heap: &mut Heap) {
        let blocks = self.blocks.as_ref().expect("captured");
        while self.bidx < blocks.len() && self.remaining == 0 {
            heap.set_block_free_list(self.bidx, self.free_head, self.free_cells);
            self.free_head = 0;
            self.free_cells = 0;
            self.bidx += 1;
            if self.bidx < blocks.len() {
                self.remaining = blocks[self.bidx].ncells;
            }
        }
    }
}

impl<'a, 'c> Engine<SocCtx<'c>> for CpuSweepEngine<'a> {
    fn name(&self) -> &'static str {
        "cpu-sweep"
    }

    fn step(&mut self, now: Cycle, ctx: &mut SocCtx<'c>) -> Progress {
        if self.done {
            return Progress::Done;
        }
        if self.cpu.now > now {
            return Progress::Stalled;
        }
        let SocCtx { mem, heaps, .. } = ctx;
        let heap = &mut *heaps[self.heap_idx];
        if self.blocks.is_none() {
            let blocks = heap.blocks().to_vec();
            self.remaining = blocks.first().map_or(0, |b| b.ncells);
            self.blocks = Some(blocks);
            self.advance_block(heap);
        }
        let blocks = self.blocks.as_ref().expect("captured");
        if self.bidx >= blocks.len() {
            // LOS marks are cleared by the runtime (untimed here,
            // matching the paper's split of responsibilities).
            for los in heap.los_objects().to_vec() {
                let h = heap.header(los.obj).without_mark();
                heap.write_va(los.obj.addr(), h.raw());
            }
            heap.finish_sweep();
            self.result.cycles = self.cpu.now - self.start;
            self.result.stalls = self.cpu.stalls;
            self.done = true;
            return Progress::Done;
        }

        let block = blocks[self.bidx];
        let cpu = &mut *self.cpu;
        cpu.instr(cpu.cfg.instr_per_cell);
        self.remaining -= 1;
        let cell = block.base_va + self.remaining * block.cell_bytes;
        // Load the cell-start word; the classification branch depends
        // on it.
        let t = cpu.access(heap, mem, cell, false);
        cpu.wait(t);
        match decode_cell_start(heap.read_va(cell)) {
            CellStart::Free { .. } => {
                heap.write_va(cell, encode_free_cell_start(self.free_head));
                cpu.access(heap, mem, cell, true);
                cpu.instr(1);
                self.free_head = cell;
                self.free_cells += 1;
            }
            CellStart::Live { nrefs, .. } => {
                let header_va = match heap.layout() {
                    LayoutKind::Bidirectional => bidi::header_of_cell(cell, nrefs),
                    LayoutKind::Conventional => conv::header_of_cell(cell),
                };
                let t = cpu.access(heap, mem, header_va, false);
                cpu.wait(t);
                let header = Header::from_raw(heap.read_va(header_va));
                if header.is_marked() {
                    heap.write_va(header_va, header.without_mark().raw());
                    cpu.access(heap, mem, header_va, true);
                    cpu.instr(1);
                } else {
                    heap.write_va(cell, encode_free_cell_start(self.free_head));
                    cpu.access(heap, mem, cell, true);
                    cpu.instr(1);
                    self.free_head = cell;
                    self.free_cells += 1;
                    self.result.work_items += 1;
                }
            }
        }
        if self.remaining == 0 {
            self.advance_block(heap);
        }
        Progress::Advanced
    }

    fn next_event_at(&self) -> Option<Cycle> {
        Some(self.cpu.now)
    }

    fn stall_reason(&self, _now: Cycle) -> StallReason {
        StallReason::MemLatency
    }

    fn ledger(&self) -> Option<StallAccounting> {
        Some(self.cpu.stalls)
    }
}
