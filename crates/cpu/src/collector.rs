//! The timed software collector running on the in-order core model.

use tracegc_heap::layout::{Header, HEADER_MARK_BIT, WORD};
use tracegc_heap::{Heap, ObjRef};
use tracegc_mem::cache::L2Backing;
use tracegc_mem::{Cache, CacheConfig, MemSystem, Source};
use tracegc_sim::{Cycle, StallAccounting, StallReason};
use tracegc_vmem::{Requester, TlbConfig, Translator};

/// Virtual base of the software collector's mark stack (scratch space the
/// runtime maps before the first GC).
const MARK_STACK_BASE: u64 = 0x3800_0000;
/// Reserved mark-stack capacity in bytes.
const MARK_STACK_BYTES: u64 = 32 << 20;

/// Core and software-loop parameters for the CPU collector.
#[derive(Debug, Clone, Copy)]
pub struct CpuConfig {
    /// L1 D-cache geometry (Table I: 16 KiB).
    pub l1d: CacheConfig,
    /// L2 geometry (Table I: 256 KiB, 8-way).
    pub l2: CacheConfig,
    /// TLB/PTW sizing for the core.
    pub tlb: TlbConfig,
    /// Non-memory instructions per object visited in the mark loop
    /// (dequeue, mark test, branch, bookkeeping).
    pub instr_per_object: u64,
    /// Non-memory instructions per reference traced (null check, push
    /// pointer arithmetic).
    pub instr_per_ref: u64,
    /// Non-memory instructions per cell examined in the sweep loop.
    pub instr_per_cell: u64,
    /// Outstanding reference loads the core can overlap in the trace
    /// loop. 1 = the in-order Rocket (load-to-use stall on every ref);
    /// larger values approximate an out-of-order BOOM-like core, which
    /// the paper found "outperformed Rocket by only around 12%" (§VI-A).
    pub ooo_window: usize,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            l1d: CacheConfig::rocket_l1d(),
            l2: CacheConfig::rocket_l2(),
            tlb: TlbConfig::default(),
            instr_per_object: 10,
            instr_per_ref: 4,
            instr_per_cell: 6,
            ooo_window: 1,
        }
    }
}

/// Result of one timed GC phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseResult {
    /// Cycles the phase took.
    pub cycles: Cycle,
    /// Objects newly marked (mark) or cells freed (sweep).
    pub work_items: u64,
    /// References examined (mark only).
    pub refs_traced: u64,
    /// Cycle attribution for the phase: `stalls.total() == cycles`.
    pub stalls: StallAccounting,
}

/// The Rocket-like in-order core running the software collector.
///
/// # Examples
///
/// ```
/// use tracegc_cpu::{Cpu, CpuConfig};
/// use tracegc_heap::{Heap, HeapConfig};
/// use tracegc_mem::MemSystem;
///
/// let mut heap = Heap::new(HeapConfig::default());
/// let a = heap.alloc(1, 0, false).unwrap();
/// let b = heap.alloc(0, 0, false).unwrap();
/// heap.set_ref(a, 0, Some(b));
/// heap.set_roots(&[a]);
///
/// let mut mem = MemSystem::ddr3(Default::default());
/// let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
/// let mark = cpu.run_mark(&mut heap, &mut mem);
/// assert_eq!(mark.work_items, 2);
/// ```
#[derive(Debug)]
pub struct Cpu {
    pub(crate) cfg: CpuConfig,
    l1d: Cache,
    l2: Cache,
    translator: Translator,
    pub(crate) now: Cycle,
    /// Per-phase cycle ledger (reset at each phase start).
    pub(crate) stalls: StallAccounting,
    /// Whether the most recent [`Cpu::access`] triggered a page-table
    /// walk — load-use waits on it are then TLB misses, not plain memory
    /// latency.
    pub(crate) last_access_walked: bool,
}

impl Cpu {
    /// Builds a core bound to `heap`'s address space, with cold caches.
    pub fn new(cfg: CpuConfig, heap: &mut Heap) -> Self {
        heap.ensure_mapped_region(MARK_STACK_BASE, MARK_STACK_BYTES);
        Self {
            cfg,
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            translator: Translator::new(heap.address_space(), cfg.tlb),
            now: 0,
            stalls: StallAccounting::default(),
            last_access_walked: false,
        }
    }

    /// Current core cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the core clock (e.g. to account for mutator execution
    /// between GC phases).
    pub fn advance_to(&mut self, cycle: Cycle) {
        self.now = self.now.max(cycle);
    }

    /// L1 D-cache statistics.
    pub fn l1_stats(&self) -> &tracegc_mem::CacheStats {
        self.l1d.stats()
    }

    /// A timed data access: translate, then L1 → L2 → DRAM. Returns the
    /// cycle the data is available.
    pub(crate) fn access(
        &mut self,
        heap: &Heap,
        mem: &mut MemSystem,
        va: u64,
        write: bool,
    ) -> Cycle {
        let walks_before = self.translator.stats().walks;
        let (pa, t) = self
            .translator
            .translate(Requester::Cpu, va, self.now, mem, &heap.phys)
            .unwrap_or_else(|e| panic!("CPU access fault: {e}"));
        self.last_access_walked = self.translator.stats().walks > walks_before;
        let mut backing = L2Backing {
            l2: &mut self.l2,
            mem,
            source: Source::Cpu,
        };
        self.l1d.access(pa, write, t, Source::Cpu, &mut backing)
    }

    /// Issue `n` single-cycle instructions.
    #[inline]
    pub(crate) fn instr(&mut self, n: u64) {
        self.now += n;
        self.stalls.busy(n);
    }

    /// Stalls the core until `t` (a load-use dependency), attributing the
    /// wait to a TLB miss when `walked`, memory latency otherwise.
    pub(crate) fn wait_tagged(&mut self, t: Cycle, walked: bool) {
        let span = t.saturating_sub(self.now);
        if span > 0 {
            let reason = if walked {
                StallReason::TlbMiss
            } else {
                StallReason::MemLatency
            };
            self.stalls.stall(reason, span);
            self.now = t;
        }
    }

    /// [`Cpu::wait_tagged`] using the most recent access's walk flag.
    pub(crate) fn wait(&mut self, t: Cycle) {
        self.wait_tagged(t, self.last_access_walked);
    }

    /// Runs the mark phase: a breadth-limited DFS with a software mark
    /// stack, exactly the traversal of §III-A, with every memory touch
    /// timed through the cache hierarchy.
    ///
    /// A thin driver: schedules a single
    /// [`CpuMarkEngine`](crate::engine::CpuMarkEngine) under the lockstep
    /// policy (proven cycle- and ledger-exact against the historical
    /// inline loop by `tests/engine_equivalence.rs`).
    pub fn run_mark(&mut self, heap: &mut Heap, mem: &mut MemSystem) -> PhaseResult {
        let start = self.now;
        let mut engine = crate::engine::CpuMarkEngine::new(self, 0);
        {
            let mut ctx = tracegc_heap::SocCtx::single(mem, heap);
            tracegc_sim::Scheduler::new(tracegc_sim::Policy::Lockstep).run(
                &mut [&mut engine],
                &mut ctx,
                start,
            );
        }
        engine.into_result()
    }

    pub(crate) fn push(
        &mut self,
        heap: &mut Heap,
        mem: &mut MemSystem,
        stack: &mut Vec<ObjRef>,
        sp: &mut u64,
        obj: ObjRef,
    ) {
        assert!(
            *sp * WORD < MARK_STACK_BYTES,
            "software mark stack overflow"
        );
        let va = MARK_STACK_BASE + *sp * WORD;
        heap.write_va(va, obj.addr());
        // Stack stores are fire-and-forget on a write-back cache.
        self.access(heap, mem, va, true);
        self.instr(1);
        stack.push(obj);
        *sp += 1;
    }

    pub(crate) fn pop(
        &mut self,
        heap: &mut Heap,
        mem: &mut MemSystem,
        stack: &mut Vec<ObjRef>,
        sp: &mut u64,
    ) -> Option<ObjRef> {
        let obj = stack.pop()?;
        *sp -= 1;
        let va = MARK_STACK_BASE + *sp * WORD;
        let t = self.access(heap, mem, va, false);
        self.wait(t);
        debug_assert_eq!(heap.read_va(va), obj.addr());
        Some(obj)
    }

    /// Resumes a mark phase from a faulted traversal unit's architected
    /// state: `pending` is the drained queue contents (the traversal
    /// unit's `drain_architected_state`), and the mark bitmap is
    /// whatever the unit left in the heap.
    ///
    /// The drained words are *untrusted* — the set may contain the very
    /// word a fault corrupted — so each entry is software-sanitized
    /// (null, alignment, bounds) before being dereferenced; survivors
    /// that fail the checks are silently dropped, which is sound because
    /// the unit never enqueues an invalid reference from an uncorrupted
    /// read.
    ///
    /// Unlike [`Cpu::run_mark`], the seeded entries are traced
    /// *unconditionally*: the unit marks objects before tracing them, so
    /// a drained entry may be marked-but-untraced and a mark-test skip
    /// would hide its children forever. Children discovered during the
    /// resume are marked in place and pushed only when newly marked, so
    /// marking stays monotonic and the loop provably terminates.
    pub fn resume_mark_from(
        &mut self,
        heap: &mut Heap,
        mem: &mut MemSystem,
        pending: &[u64],
    ) -> PhaseResult {
        self.stalls = StallAccounting::default();
        let start = self.now;
        let mut result = PhaseResult::default();
        let mut stack: Vec<ObjRef> = Vec::new();
        let mut sp: u64 = 0;

        for &va in pending {
            // Null/alignment test plus the bounds compare.
            self.instr(2);
            if va == 0 || !va.is_multiple_of(WORD) || !heap.spaces().in_traced_space(va) {
                continue;
            }
            // Seed: mark (idempotent — the unit may already have) and
            // stack for an unconditional trace.
            let t = self.access(heap, mem, va, false);
            self.wait(t);
            let pa = heap.va_to_pa(va);
            let old = Header::from_raw(heap.phys.fetch_or_u64(pa, HEADER_MARK_BIT));
            self.access(heap, mem, va, true);
            self.instr(1);
            if !old.is_marked() {
                result.work_items += 1;
            }
            self.push(heap, mem, &mut stack, &mut sp, ObjRef::new(va));
        }

        while let Some(obj) = self.pop(heap, mem, &mut stack, &mut sp) {
            self.trace_marked(heap, mem, &mut stack, &mut sp, obj, &mut result);
        }

        result.cycles = self.now - start;
        result.stalls = self.stalls;
        result
    }

    /// Traces every reference of an already-marked `obj`, marking each
    /// child in place and pushing only the newly marked — the resume
    /// loop's body (timing mirrors the normal mark loop's visit).
    fn trace_marked(
        &mut self,
        heap: &mut Heap,
        mem: &mut MemSystem,
        stack: &mut Vec<ObjRef>,
        sp: &mut u64,
        obj: ObjRef,
        result: &mut PhaseResult,
    ) {
        use std::collections::VecDeque;
        use tracegc_heap::layout::{bidi, conv, LayoutKind};

        self.instr(self.cfg.instr_per_object);
        let t = self.access(heap, mem, obj.addr(), false);
        self.wait(t);
        let nrefs = Header::from_raw(heap.read_va(obj.addr())).nrefs();

        let mark_child = |cpu: &mut Self,
                          heap: &mut Heap,
                          mem: &mut MemSystem,
                          stack: &mut Vec<ObjRef>,
                          sp: &mut u64,
                          result: &mut PhaseResult,
                          raw: u64| {
            let t = cpu.access(heap, mem, raw, false);
            cpu.wait(t);
            let pa = heap.va_to_pa(raw);
            let old = heap.phys.fetch_or_u64(pa, HEADER_MARK_BIT);
            cpu.access(heap, mem, raw, true);
            cpu.instr(1);
            if !Header::from_raw(old).is_marked() {
                result.work_items += 1;
                cpu.push(heap, mem, stack, sp, ObjRef::new(raw));
            }
        };

        match heap.layout() {
            LayoutKind::Bidirectional => {
                let window = self.cfg.ooo_window.max(1);
                let mut pending: VecDeque<(Cycle, u64, bool)> = VecDeque::with_capacity(window);
                for i in 0..nrefs {
                    self.instr(self.cfg.instr_per_ref);
                    let slot = bidi::ref_slot(obj, i);
                    let t = self.access(heap, mem, slot, false);
                    let raw = heap.read_va(slot);
                    pending.push_back((t, raw, self.last_access_walked));
                    result.refs_traced += 1;
                    if pending.len() >= window {
                        let (t, raw, walked) = pending.pop_front().expect("non-empty");
                        self.wait_tagged(t, walked);
                        if raw != 0 {
                            mark_child(self, heap, mem, stack, sp, result, raw);
                        }
                    }
                }
                while let Some((t, raw, walked)) = pending.pop_front() {
                    self.wait_tagged(t, walked);
                    if raw != 0 {
                        mark_child(self, heap, mem, stack, sp, result, raw);
                    }
                }
            }
            LayoutKind::Conventional => {
                let tib_slot = conv::tib_slot(obj);
                let t = self.access(heap, mem, tib_slot, false);
                self.wait(t);
                let tib = heap.read_va(tib_slot);
                for i in 0..nrefs {
                    self.instr(self.cfg.instr_per_ref);
                    let off_va = tib + (1 + i as u64) * WORD;
                    let t = self.access(heap, mem, off_va, false);
                    self.wait(t);
                    let offset = heap.read_va(off_va) as u32;
                    let slot = conv::field_slot(obj, offset);
                    let t = self.access(heap, mem, slot, false);
                    self.wait(t);
                    let raw = heap.read_va(slot);
                    result.refs_traced += 1;
                    if raw != 0 {
                        mark_child(self, heap, mem, stack, sp, result, raw);
                    }
                }
            }
        }
    }

    /// Runs the sweep phase: a linear scan over every mark-sweep block,
    /// rebuilding free lists and clearing surviving marks — the software
    /// equivalent of the reclamation unit (§V-D).
    ///
    /// A thin driver: schedules a single
    /// [`CpuSweepEngine`](crate::engine::CpuSweepEngine) under the
    /// lockstep policy (proven cycle- and ledger-exact against the
    /// historical inline loop by `tests/engine_equivalence.rs`).
    pub fn run_sweep(&mut self, heap: &mut Heap, mem: &mut MemSystem) -> PhaseResult {
        let start = self.now;
        let mut engine = crate::engine::CpuSweepEngine::new(self, 0);
        {
            let mut ctx = tracegc_heap::SocCtx::single(mem, heap);
            tracegc_sim::Scheduler::new(tracegc_sim::Policy::Lockstep).run(
                &mut [&mut engine],
                &mut ctx,
                start,
            );
        }
        engine.into_result()
    }

    /// Runs a complete stop-the-world GC (mark then sweep); returns the
    /// two phase results.
    pub fn run_gc(&mut self, heap: &mut Heap, mem: &mut MemSystem) -> (PhaseResult, PhaseResult) {
        let mark = self.run_mark(heap, mem);
        let sweep = self.run_sweep(heap, mem);
        (mark, sweep)
    }

    /// Marks a single object functionally through the timed path — used
    /// by barrier-cost experiments.
    pub fn timed_mark_one(&mut self, heap: &mut Heap, mem: &mut MemSystem, obj: ObjRef) -> bool {
        let t = self.access(heap, mem, obj.addr(), false);
        self.now = self.now.max(t);
        let pa = heap.va_to_pa(obj.addr());
        let old = heap.phys.fetch_or_u64(pa, HEADER_MARK_BIT);
        self.access(heap, mem, obj.addr(), true);
        Header::from_raw(old).is_marked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegc_heap::layout::LayoutKind;
    use tracegc_heap::verify::{check_free_lists, check_marks_match_reachability};
    use tracegc_heap::HeapConfig;

    fn build_graph(layout: LayoutKind) -> Heap {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 128 << 20,
            layout,
            ..HeapConfig::default()
        });
        let objs: Vec<ObjRef> = (0..500)
            .map(|i| h.alloc(2 + (i % 3) as u32, (i % 5) as u32, false).unwrap())
            .collect();
        for i in 0..300usize {
            h.set_ref(objs[i], 0, Some(objs[(i + 1) % 300]));
            h.set_ref(objs[i], 1, Some(objs[(i * 17) % 300]));
        }
        for i in 300..499usize {
            h.set_ref(objs[i], 0, Some(objs[i + 1])); // garbage chain
        }
        h.set_roots(&[objs[0], objs[150]]);
        h
    }

    #[test]
    fn timed_mark_matches_reachability_oracle() {
        let mut heap = build_graph(LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
        let result = cpu.run_mark(&mut heap, &mut mem);
        check_marks_match_reachability(&heap).unwrap();
        assert_eq!(result.work_items, 300);
        assert!(result.cycles > 0);
    }

    #[test]
    fn timed_sweep_matches_software_oracle() {
        let mut heap = build_graph(LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
        cpu.run_mark(&mut heap, &mut mem);
        let live_before = heap.reachable_from_roots();
        let sweep = cpu.run_sweep(&mut heap, &mut mem);
        assert_eq!(sweep.work_items, 200, "dead objects freed");
        check_free_lists(&heap).unwrap();
        // Marks cleared, live objects untouched.
        assert!(heap.marked_set().is_empty());
        assert_eq!(heap.reachable_from_roots(), live_before);
    }

    #[test]
    fn conventional_layout_is_slower_to_mark() {
        let run = |layout| {
            let mut heap = build_graph(layout);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
            cpu.run_mark(&mut heap, &mut mem).cycles
        };
        let bidi = run(LayoutKind::Bidirectional);
        let conv = run(LayoutKind::Conventional);
        assert!(
            conv > bidi,
            "conventional ({conv}) should cost more than bidirectional ({bidi})"
        );
    }

    #[test]
    fn second_gc_marks_the_same_set() {
        let mut heap = build_graph(LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
        let (m1, _s1) = cpu.run_gc(&mut heap, &mut mem);
        let (m2, _s2) = cpu.run_gc(&mut heap, &mut mem);
        assert_eq!(m1.work_items, m2.work_items);
        check_free_lists(&heap).unwrap();
    }

    #[test]
    fn faster_memory_shortens_the_pause() {
        let run = |mem: &mut MemSystem| {
            let mut heap = build_graph(LayoutKind::Bidirectional);
            let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
            cpu.run_mark(&mut heap, mem).cycles
        };
        let mut ddr = MemSystem::ddr3(Default::default());
        let mut pipe = MemSystem::pipe(Default::default());
        let t_ddr = run(&mut ddr);
        let t_pipe = run(&mut pipe);
        assert!(t_pipe < t_ddr);
    }

    #[test]
    fn mark_traces_every_reference_of_live_objects() {
        let mut heap = build_graph(LayoutKind::Bidirectional);
        let expected: u64 = heap
            .reachable_from_roots()
            .iter()
            .map(|&o| heap.nrefs(o) as u64)
            .sum();
        let mut mem = MemSystem::ddr3(Default::default());
        let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
        let result = cpu.run_mark(&mut heap, &mut mem);
        assert_eq!(result.refs_traced, expected);
    }

    #[test]
    fn timed_mark_one_is_idempotent() {
        let mut heap = build_graph(LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
        let obj = heap.roots()[0];
        assert!(!cpu.timed_mark_one(&mut heap, &mut mem, obj));
        assert!(cpu.timed_mark_one(&mut heap, &mut mem, obj));
    }

    #[test]
    fn stall_accounting_sums_to_phase_cycles() {
        for layout in [LayoutKind::Bidirectional, LayoutKind::Conventional] {
            let mut heap = build_graph(layout);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
            let (mark, sweep) = cpu.run_gc(&mut heap, &mut mem);
            assert_eq!(
                mark.stalls.total(),
                mark.cycles,
                "mark attribution must cover every cycle ({layout:?})"
            );
            assert_eq!(
                sweep.stalls.total(),
                sweep.cycles,
                "sweep attribution must cover every cycle ({layout:?})"
            );
            assert!(mark.stalls.busy_cycles() > 0);
            assert!(mark.stalls.total_stalled() > 0, "cold caches must stall");
        }
    }

    #[test]
    fn resume_from_roots_completes_the_mark() {
        for layout in [LayoutKind::Bidirectional, LayoutKind::Conventional] {
            let mut heap = build_graph(layout);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
            let pending: Vec<u64> = heap.roots().iter().map(|r| r.addr()).collect();
            let result = cpu.resume_mark_from(&mut heap, &mut mem, &pending);
            check_marks_match_reachability(&heap).unwrap();
            assert_eq!(result.work_items, 300, "{layout:?}");
            assert_eq!(result.stalls.total(), result.cycles, "{layout:?}");
        }
    }

    #[test]
    fn resume_retraces_marked_but_untraced_seeds() {
        // The hardware marks objects *before* tracing them, so the
        // drained state can contain already-marked entries whose
        // children were never visited. A mark-test skip would lose them.
        let mut heap = build_graph(LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
        let roots: Vec<ObjRef> = heap.roots().to_vec();
        for &r in &roots {
            assert!(!heap.mark(r), "roots start unmarked");
        }
        let pending: Vec<u64> = roots.iter().map(|r| r.addr()).collect();
        let result = cpu.resume_mark_from(&mut heap, &mut mem, &pending);
        check_marks_match_reachability(&heap).unwrap();
        // The seeds were already marked, so only their descendants count
        // as new work.
        assert_eq!(result.work_items, 300 - roots.len() as u64);
    }

    #[test]
    fn resume_sanitizes_untrusted_pending_words() {
        let mut heap = build_graph(LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
        // Null, misaligned, and out-of-bounds words — exactly what a
        // corrupting fault can leave in the drained state.
        let junk = [0u64, 0x1003, 1u64 << 40, !7u64];
        let result = cpu.resume_mark_from(&mut heap, &mut mem, &junk);
        assert_eq!(result.work_items, 0);
        assert!(heap.marked_set().is_empty());
    }

    #[test]
    fn resume_tolerates_duplicate_pending_entries() {
        let mut heap = build_graph(LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
        let mut pending: Vec<u64> = heap.roots().iter().map(|r| r.addr()).collect();
        let dup = pending.clone();
        pending.extend(dup);
        let result = cpu.resume_mark_from(&mut heap, &mut mem, &pending);
        check_marks_match_reachability(&heap).unwrap();
        assert_eq!(result.work_items, 300);
    }

    #[test]
    fn empty_root_set_is_a_noop_gc() {
        let mut heap = Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            ..HeapConfig::default()
        });
        let _garbage = heap.alloc(1, 1, false).unwrap();
        heap.set_roots(&[]);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
        let (mark, sweep) = cpu.run_gc(&mut heap, &mut mem);
        assert_eq!(mark.work_items, 0);
        assert_eq!(sweep.work_items, 1);
        check_free_lists(&heap).unwrap();
    }
}
