//! Read-barrier implementation cost models (§III "Barrier
//! Implementations" and the §IV-E `REFLOAD` CPU extension).
//!
//! The paper's taxonomy of read-barrier implementations:
//!
//! 1. **Compiled check** — barrier code in the instruction stream; the
//!    fast path costs real instructions on *every* reference load, and
//!    the slow path branches to a handler.
//! 2. **Virtual-memory trap** — the fast path is free (the check is
//!    folded into the TLB), but a triggered barrier raises a trap that
//!    flushes the pipeline ("trap storms when many pages are freshly
//!    invalidated").
//! 3. **`REFLOAD`** (§IV-E) — a fused load + barrier instruction,
//!    internally split into a load and an RB µop. The TLB fault is
//!    intercepted and transformed into a load from the reclamation
//!    unit's address range, so the slow path is "loads that may take
//!    longer, but traps and pipeline flushes are eliminated" and the
//!    core can *speculate over it* like any other load.
//!
//! This module computes mutator barrier overhead for a reference-access
//! trace under each scheme, reproducing the §IV-E argument that the
//! fused instruction dominates once relocation churn grows.

use tracegc_sim::Cycle;

/// Which read-barrier implementation the mutator runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierScheme {
    /// Barrier instructions compiled into every reference load.
    CompiledCheck,
    /// Virtual-memory fold with a trap on the slow path.
    VmTrap,
    /// The §IV-E fused `REFLOAD` instruction.
    Refload,
}

impl BarrierScheme {
    /// All schemes, in the paper's presentation order.
    pub const ALL: [BarrierScheme; 3] = [
        BarrierScheme::CompiledCheck,
        BarrierScheme::VmTrap,
        BarrierScheme::Refload,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            BarrierScheme::CompiledCheck => "compiled-check",
            BarrierScheme::VmTrap => "vm-trap",
            BarrierScheme::Refload => "refload (SIV-E)",
        }
    }
}

/// Per-event costs of each scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefloadCosts {
    /// Compiled check: extra instructions on every reference load.
    pub compiled_fast: Cycle,
    /// Compiled check: slow-path branch + software forwarding-table
    /// lookup (hash probe + dependent loads).
    pub compiled_slow: Cycle,
    /// VM trap: pipeline flush + kernel entry/exit + handler.
    pub trap_slow: Cycle,
    /// REFLOAD: extra µop on the fast path.
    pub refload_fast: Cycle,
    /// REFLOAD: the intercepted load from the reclamation unit's range
    /// (a long load the core can speculate over, amortized across the
    /// load-store queue).
    pub refload_slow: Cycle,
}

impl Default for RefloadCosts {
    fn default() -> Self {
        Self {
            compiled_fast: 3,
            compiled_slow: 90,
            trap_slow: 400,
            refload_fast: 1,
            refload_slow: 60,
        }
    }
}

/// Overhead estimate for one scheme over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierOverhead {
    /// The scheme measured.
    pub scheme: BarrierScheme,
    /// Total barrier cycles charged.
    pub cycles: Cycle,
    /// Overhead relative to the barrier-free trace (0.10 = 10%).
    pub relative: f64,
}

/// Computes the barrier overhead of each scheme for a mutator that
/// performs `ref_loads` reference loads, of which `slow_fraction`
/// trigger the barrier (the object's page is being relocated), on top of
/// `baseline_cycles` of barrier-free execution.
///
/// # Panics
///
/// Panics if `slow_fraction` is outside `[0, 1]`.
pub fn barrier_overheads(
    costs: &RefloadCosts,
    ref_loads: u64,
    slow_fraction: f64,
    baseline_cycles: Cycle,
) -> Vec<BarrierOverhead> {
    assert!(
        (0.0..=1.0).contains(&slow_fraction),
        "fraction out of range"
    );
    let slow = (ref_loads as f64 * slow_fraction) as u64;
    let fast = ref_loads - slow;
    BarrierScheme::ALL
        .iter()
        .map(|&scheme| {
            let cycles = match scheme {
                BarrierScheme::CompiledCheck => {
                    fast * costs.compiled_fast + slow * (costs.compiled_fast + costs.compiled_slow)
                }
                BarrierScheme::VmTrap => slow * costs.trap_slow,
                BarrierScheme::Refload => {
                    fast * costs.refload_fast + slow * (costs.refload_fast + costs.refload_slow)
                }
            };
            BarrierOverhead {
                scheme,
                cycles,
                relative: cycles as f64 / baseline_cycles.max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overhead_of(scheme: BarrierScheme, slow_fraction: f64) -> f64 {
        barrier_overheads(
            &RefloadCosts::default(),
            1_000_000,
            slow_fraction,
            10_000_000,
        )
        .into_iter()
        .find(|o| o.scheme == scheme)
        .expect("scheme present")
        .relative
    }

    #[test]
    fn traps_win_when_nothing_relocates() {
        // §III: the VM fold has no fast-path cost at all.
        assert_eq!(overhead_of(BarrierScheme::VmTrap, 0.0), 0.0);
        assert!(overhead_of(BarrierScheme::CompiledCheck, 0.0) > 0.0);
    }

    #[test]
    fn trap_storms_invert_the_ranking() {
        // §IV-E: "these traps can be very frequent if churn is large
        // (resulting in trap storms)".
        let churn = 0.05;
        assert!(
            overhead_of(BarrierScheme::VmTrap, churn) > overhead_of(BarrierScheme::Refload, churn)
        );
        assert!(
            overhead_of(BarrierScheme::VmTrap, churn)
                > overhead_of(BarrierScheme::CompiledCheck, churn)
        );
    }

    #[test]
    fn refload_dominates_compiled_checks_everywhere() {
        for churn in [0.0, 0.01, 0.05, 0.2] {
            assert!(
                overhead_of(BarrierScheme::Refload, churn)
                    <= overhead_of(BarrierScheme::CompiledCheck, churn),
                "churn {churn}"
            );
        }
    }

    #[test]
    fn overheads_grow_with_churn() {
        for scheme in BarrierScheme::ALL {
            assert!(overhead_of(scheme, 0.2) >= overhead_of(scheme, 0.01));
        }
    }

    #[test]
    fn crossover_exists_between_trap_and_refload() {
        // At very low churn, traps beat REFLOAD's per-load µop; at high
        // churn, REFLOAD wins — there is a crossover, which is exactly
        // why §IV-E proposes the instruction for churn-heavy concurrent
        // collectors.
        assert!(
            overhead_of(BarrierScheme::VmTrap, 0.0001)
                < overhead_of(BarrierScheme::Refload, 0.0001)
        );
        assert!(overhead_of(BarrierScheme::VmTrap, 0.1) > overhead_of(BarrierScheme::Refload, 0.1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_fraction_panics() {
        barrier_overheads(&RefloadCosts::default(), 100, 1.5, 1000);
    }
}
