//! The in-order CPU baseline: a Rocket-like core executing the software
//! mark-sweep collector.
//!
//! The paper's baseline is JikesRVM's GC rewritten in C (compiled `-O3`)
//! running on an in-order Rocket core with the Table I cache hierarchy
//! (§VI-A). Its performance is limited by exactly the effects this model
//! captures:
//!
//! * the mark-check **branch depends on the header load**, so the core
//!   cannot run ahead of a miss ("the outcome of the mark operation
//!   determines whether or not references need to be copied, this limits
//!   how far a CPU can speculate ahead", §IV-A);
//! * reference loads stall on **load-to-use** in an in-order pipeline,
//!   with only cache-line spatial locality to amortize misses;
//! * misses are bounded by the small **MSHR file** of a typical L1.
//!
//! The collector executed is *real*: it operates on the same
//! [`Heap`](tracegc_heap::Heap) as the accelerator, producing an
//! identical mark set and identical post-sweep free lists — only the
//! time it takes differs.

pub mod collector;
pub mod engine;
pub mod refload;

pub use collector::{Cpu, CpuConfig, PhaseResult};
pub use engine::{CpuMarkEngine, CpuSweepEngine};
pub use refload::{barrier_overheads, BarrierOverhead, BarrierScheme, RefloadCosts};
