//! Criterion benchmark harness for the tracegc project.
//!
//! Each `benches/figNN_*.rs` target regenerates the corresponding paper
//! table/figure at a reduced scale (printing the rows) and then
//! benchmarks the underlying simulation kernel with Criterion. Run them
//! all with `cargo bench --workspace`; regenerate full-scale numbers
//! with `cargo run -p tracegc --release --bin experiments -- all`.
