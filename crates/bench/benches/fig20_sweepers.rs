//! Bench + row regeneration for Fig. 20: block-sweeper scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use tracegc::experiments::{run, Options};
use tracegc::heap::verify::software_mark;
use tracegc::heap::LayoutKind;
use tracegc::hwgc::{GcUnitConfig, ReclamationUnit};
use tracegc::runner::MemKind;
use tracegc::workloads::generate::generate_heap;
use tracegc::workloads::spec::by_name;

fn bench(c: &mut Criterion) {
    let out = run(
        "fig20",
        &Options {
            scale: 0.03,
            pauses: 1,
            ..Options::default()
        },
    )
    .expect("fig20 exists");
    for t in &out.tables {
        println!("{}", t.render());
    }

    let mut group = c.benchmark_group("fig20");
    group.sample_size(10);
    let spec = by_name("pmd").unwrap().scaled(0.02);
    for sweepers in [1usize, 2, 4, 8] {
        group.bench_function(format!("sweepers_{sweepers}"), |b| {
            b.iter(|| {
                let mut w = generate_heap(std::hint::black_box(&spec), LayoutKind::Bidirectional);
                software_mark(&mut w.heap);
                let mut mem = MemKind::ddr3_default().fresh();
                let cfg = GcUnitConfig {
                    sweepers,
                    ..GcUnitConfig::default()
                };
                let mut unit = ReclamationUnit::new(cfg, &w.heap);
                unit.run_sweep(&mut w.heap, &mut mem, 0).cycles()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
