//! Bench + row regeneration for Fig. 18: cache partitioning and the
//! per-source request breakdowns.
//!
//! The full fig18 experiment forces full workload scale (TLB pressure
//! needs a big heap), which is too slow for a bench loop — here we print
//! the partitioned breakdown at bench scale and benchmark both
//! topologies' traversal kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use tracegc::heap::LayoutKind;
use tracegc::hwgc::{CacheTopology, GcUnitConfig};
use tracegc::mem::Source;
use tracegc::runner::{run_unit_gc, MemKind};
use tracegc::workloads::spec::by_name;

fn bench(c: &mut Criterion) {
    let spec = by_name("avrora").unwrap().scaled(0.05);

    // Fig. 18b rows at bench scale.
    let r = run_unit_gc(
        &spec,
        LayoutKind::Bidirectional,
        GcUnitConfig::default(),
        MemKind::ddr3_default(),
    );
    println!("fig18b (partitioned) memory requests @ bench scale:");
    for s in [
        Source::MarkQueue,
        Source::Tracer,
        Source::Ptw,
        Source::Marker,
    ] {
        println!("  {:<11} {}", s.label(), r.snapshot.requests(s));
    }
    println!("(run `experiments -- fig18` for the full-scale shared-cache breakdown)");

    let mut group = c.benchmark_group("fig18");
    group.sample_size(10);
    for (name, topology) in [
        ("partitioned", CacheTopology::Partitioned),
        ("shared", CacheTopology::Shared),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                run_unit_gc(
                    std::hint::black_box(&spec),
                    LayoutKind::Bidirectional,
                    GcUnitConfig {
                        topology,
                        ..GcUnitConfig::default()
                    },
                    MemKind::ddr3_default(),
                )
                .report
                .mark
                .cycles()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
