//! Bench + row regeneration for Fig. 17: potential performance on the
//! 1-cycle / 8 GB/s latency–bandwidth pipe.

use criterion::{criterion_group, criterion_main, Criterion};
use tracegc::experiments::{run, Options};
use tracegc::heap::LayoutKind;
use tracegc::hwgc::GcUnitConfig;
use tracegc::runner::{run_unit_gc, MemKind};
use tracegc::workloads::spec::by_name;

fn bench(c: &mut Criterion) {
    let out = run(
        "fig17",
        &Options {
            scale: 0.03,
            pauses: 1,
            ..Options::default()
        },
    )
    .expect("fig17 exists");
    for t in &out.tables {
        println!("{}", t.render());
    }

    let mut group = c.benchmark_group("fig17");
    group.sample_size(10);
    let spec = by_name("xalan").unwrap().scaled(0.02);
    group.bench_function("unit_mark_on_pipe", |b| {
        b.iter(|| {
            run_unit_gc(
                std::hint::black_box(&spec),
                LayoutKind::Bidirectional,
                GcUnitConfig::default(),
                MemKind::pipe_8gbps(),
            )
            .report
            .mark
            .cycles()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
