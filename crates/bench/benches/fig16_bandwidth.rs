//! Bench + row regeneration for Fig. 16: bandwidth over time during the
//! last avrora pause.

use criterion::{criterion_group, criterion_main, Criterion};
use tracegc::experiments::{run, Options};
use tracegc::heap::LayoutKind;
use tracegc::hwgc::GcUnitConfig;
use tracegc::runner::{run_unit_gc, MemKind};
use tracegc::workloads::spec::by_name;

fn bench(c: &mut Criterion) {
    let out = run(
        "fig16",
        &Options {
            scale: 0.03,
            pauses: 2,
            ..Options::default()
        },
    )
    .expect("fig16 exists");
    // Print only the summary table; the full series goes to CSV in the
    // experiments binary.
    println!("{}", out.tables[0].render());

    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);
    let spec = by_name("avrora").unwrap().scaled(0.02);
    group.bench_function("unit_gc_with_bandwidth_metering", |b| {
        b.iter(|| {
            let r = run_unit_gc(
                std::hint::black_box(&spec),
                LayoutKind::Bidirectional,
                GcUnitConfig::default(),
                MemKind::ddr3_default(),
            );
            r.snapshot.series_gbps.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
