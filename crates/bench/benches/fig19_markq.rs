//! Bench + row regeneration for Fig. 19: mark-queue size trade-offs.

use criterion::{criterion_group, criterion_main, Criterion};
use tracegc::experiments::{run, Options};
use tracegc::heap::LayoutKind;
use tracegc::hwgc::GcUnitConfig;
use tracegc::runner::{run_unit_gc, MemKind};
use tracegc::workloads::spec::by_name;

fn bench(c: &mut Criterion) {
    let out = run(
        "fig19",
        &Options {
            scale: 0.03,
            pauses: 1,
            ..Options::default()
        },
    )
    .expect("fig19 exists");
    for t in &out.tables {
        println!("{}", t.render());
    }

    let mut group = c.benchmark_group("fig19");
    group.sample_size(10);
    let spec = by_name("avrora").unwrap().scaled(0.02);
    for (name, entries) in [("markq_128", 128usize), ("markq_16k", 16 * 1024)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                run_unit_gc(
                    std::hint::black_box(&spec),
                    LayoutKind::Bidirectional,
                    GcUnitConfig {
                        markq_entries: entries,
                        ..GcUnitConfig::default()
                    },
                    MemKind::ddr3_default(),
                )
                .report
                .mark
                .markq
                .spill_writes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
