//! Bench + row regeneration for Fig. 21: the mark-bit cache.

use criterion::{criterion_group, criterion_main, Criterion};
use tracegc::experiments::{run, Options};
use tracegc::hwgc::MarkBitCache;

fn bench(c: &mut Criterion) {
    let out = run(
        "fig21",
        &Options {
            scale: 0.03,
            pauses: 1,
            ..Options::default()
        },
    )
    .expect("fig21 exists");
    for t in &out.tables {
        println!("{}", t.render());
    }
    for n in &out.notes {
        println!("note: {n}");
    }

    let mut group = c.benchmark_group("fig21");
    group.sample_size(20);
    // The raw filter structure: a Zipf-skewed reference stream.
    let zipf = tracegc::sim::dist::Zipf::new(10_000, 1.0);
    let mut rng = tracegc::sim::rng::StdRng::seed_from_u64(21);
    let stream: Vec<u64> = (0..100_000)
        .map(|_| 0x4000_0000 + zipf.sample(&mut rng) as u64 * 8)
        .collect();
    for size in [64usize, 256] {
        group.bench_function(format!("filter_{size}_entries"), |b| {
            b.iter(|| {
                let mut cache = MarkBitCache::new(size);
                let mut filtered = 0u64;
                for &va in std::hint::black_box(&stream) {
                    if cache.filter(va) {
                        filtered += 1;
                    }
                }
                filtered
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
