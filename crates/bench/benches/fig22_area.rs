//! Bench + row regeneration for Fig. 22: area estimates.

use criterion::{criterion_group, criterion_main, Criterion};
use tracegc::experiments::{run, Options};
use tracegc::hwgc::GcUnitConfig;
use tracegc::model::area::gc_unit_area;

fn bench(c: &mut Criterion) {
    let out = run(
        "fig22",
        &Options {
            scale: 1.0,
            pauses: 1,
            ..Options::default()
        },
    )
    .expect("fig22 exists");
    for t in &out.tables {
        println!("{}", t.render());
    }
    for n in &out.notes {
        println!("note: {n}");
    }

    let mut group = c.benchmark_group("fig22");
    group.bench_function("area_model", |b| {
        b.iter(|| gc_unit_area(std::hint::black_box(&GcUnitConfig::default())).total())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
