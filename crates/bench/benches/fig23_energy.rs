//! Bench + row regeneration for Fig. 23: power and energy.

use criterion::{criterion_group, criterion_main, Criterion};
use tracegc::experiments::{run, Options};
use tracegc::model::{Agent, EnergyModel};

fn bench(c: &mut Criterion) {
    let out = run(
        "fig23",
        &Options {
            scale: 0.03,
            pauses: 1,
            ..Options::default()
        },
    )
    .expect("fig23 exists");
    for t in &out.tables {
        println!("{}", t.render());
    }
    for n in &out.notes {
        println!("note: {n}");
    }

    let mut group = c.benchmark_group("fig23");
    group.bench_function("energy_model", |b| {
        let model = EnergyModel::default();
        b.iter(|| {
            model
                .pause_energy(
                    Agent::GcUnit,
                    std::hint::black_box(10_000_000),
                    100 << 20,
                    800_000,
                    200_000,
                )
                .total_mj()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
