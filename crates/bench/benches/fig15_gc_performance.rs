//! Bench + row regeneration for Fig. 15: the headline mark/sweep
//! speedups on DDR3.

use criterion::{criterion_group, criterion_main, Criterion};
use tracegc::experiments::{run, Options};
use tracegc::heap::LayoutKind;
use tracegc::hwgc::GcUnitConfig;
use tracegc::runner::{DualRun, MemKind};
use tracegc::workloads::spec::by_name;

fn bench(c: &mut Criterion) {
    let out = run(
        "fig15",
        &Options {
            scale: 0.03,
            pauses: 1,
            ..Options::default()
        },
    )
    .expect("fig15 exists");
    for t in &out.tables {
        println!("{}", t.render());
    }
    for n in &out.notes {
        println!("note: {n}");
    }

    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    let spec = by_name("avrora").unwrap().scaled(0.02);
    group.bench_function("paired_pause_avrora", |b| {
        b.iter(|| {
            let mut run = DualRun::new(
                std::hint::black_box(&spec),
                LayoutKind::Bidirectional,
                GcUnitConfig::default(),
            );
            run.run_pause(MemKind::ddr3_default()).mark_speedup()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
