//! Bench + row regeneration for Fig. 1 (motivation): GC time fraction
//! and the lusearch query-latency CDF.

use criterion::{criterion_group, criterion_main, Criterion};
use tracegc::experiments::{run, Options};
use tracegc::workloads::queries::{QueryLatencySim, QueryLatencySpec};

fn opts() -> Options {
    Options {
        scale: 0.02,
        pauses: 1,
        ..Options::default()
    }
}

fn bench(c: &mut Criterion) {
    // Regenerate the paper's rows once, at smoke scale.
    for id in ["fig1a", "fig1b"] {
        let out = run(id, &opts()).expect("experiment exists");
        for t in &out.tables {
            println!("{}", t.render());
        }
    }

    let mut group = c.benchmark_group("fig01");
    group.sample_size(10);
    group.bench_function("query_latency_sim_10k", |b| {
        let sim = QueryLatencySim::new(QueryLatencySpec::default());
        b.iter(|| {
            let (lat, _) = sim.run(std::hint::black_box(&[150_000]));
            lat.len()
        })
    });
    group.bench_function("cpu_gc_pause_avrora", |b| {
        b.iter(|| run("fig1a", &opts()).unwrap().tables.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
