//! Bench + row regeneration for the prose ablations (ablA–ablD).

use criterion::{criterion_group, criterion_main, Criterion};
use tracegc::experiments::{run, Options};
use tracegc::heap::LayoutKind;
use tracegc::hwgc::GcUnitConfig;
use tracegc::mem::ddr3::Ddr3Config;
use tracegc::runner::{run_unit_gc, MemKind};
use tracegc::workloads::spec::by_name;

fn bench(c: &mut Criterion) {
    let opts = Options {
        scale: 0.03,
        pauses: 1,
        ..Options::default()
    };
    for id in ["ablA", "ablB", "ablC", "ablD"] {
        let out = run(id, &opts).expect("ablation exists");
        for t in &out.tables {
            println!("{}", t.render());
        }
        for n in &out.notes {
            println!("note: {n}");
        }
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let spec = by_name("avrora").unwrap().scaled(0.02);
    group.bench_function("unit_mark_frfcfs", |b| {
        b.iter(|| {
            run_unit_gc(
                std::hint::black_box(&spec),
                LayoutKind::Bidirectional,
                GcUnitConfig::default(),
                MemKind::Ddr3(Ddr3Config::default()),
            )
            .report
            .mark
            .cycles()
        })
    });
    group.bench_function("unit_mark_fifo8", |b| {
        b.iter(|| {
            run_unit_gc(
                std::hint::black_box(&spec),
                LayoutKind::Bidirectional,
                GcUnitConfig::default(),
                MemKind::Ddr3(Ddr3Config::fifo_8_reads()),
            )
            .report
            .mark
            .cycles()
        })
    });
    group.bench_function("unit_mark_conventional_layout", |b| {
        b.iter(|| {
            run_unit_gc(
                std::hint::black_box(&spec),
                LayoutKind::Conventional,
                GcUnitConfig::default(),
                MemKind::ddr3_default(),
            )
            .report
            .mark
            .cycles()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
