//! Heap-snapshot generation and mutator churn.

use tracegc_heap::{Heap, HeapConfig, LayoutKind, ObjRef};
use tracegc_sim::dist::{log_normal, Zipf};
use tracegc_sim::rng::{Rng, StdRng};

use crate::spec::BenchSpec;

/// A generated benchmark heap plus the bookkeeping experiments need.
#[derive(Debug)]
pub struct WorkloadHeap {
    /// The heap, roots already published.
    pub heap: Heap,
    /// Every allocated object (live and dead).
    pub objects: Vec<ObjRef>,
    /// Number of objects reachable from the roots at generation time.
    pub live_objects: usize,
    /// The hot set (targets of [`BenchSpec::hot_fraction`] of edges).
    pub hot_set: Vec<ObjRef>,
    /// RNG state for subsequent churn, seeded from the spec.
    pub rng: StdRng,
}

/// Draws an out-degree with the given mean (geometric-like, capped).
fn draw_refs(rng: &mut StdRng, spec: &BenchSpec) -> u32 {
    if rng.random::<f64>() < spec.array_fraction {
        // Reference arrays: long objects exercising the tracer's
        // decoupling (§IV-A.II).
        rng.random_range(8..96)
    } else {
        // Geometric around the mean.
        let p = 1.0 / (spec.mean_refs + 1.0);
        let mut k = 0u32;
        while k < 12 && rng.random::<f64>() >= p {
            k += 1;
        }
        k
    }
}

fn draw_scalars(rng: &mut StdRng, spec: &BenchSpec) -> u32 {
    (log_normal(rng, spec.scalar_mu, spec.scalar_sigma) as u32).min(64)
}

/// Generates a heap snapshot for `spec` under the given layout.
///
/// The live subgraph is a random spanning forest (guaranteeing
/// reachability) plus Zipf-popular cross edges with a dedicated hot set;
/// dead objects form chains among themselves. All randomness comes from
/// `spec.seed`.
pub fn generate_heap(spec: &BenchSpec, layout: LayoutKind) -> WorkloadHeap {
    generate_heap_opts(spec, layout, false)
}

/// Like [`generate_heap`], with the heap mapped using 2 MiB superpages
/// when `superpages` is set (the §VII TLB-relief ablation).
pub fn generate_heap_opts(spec: &BenchSpec, layout: LayoutKind, superpages: bool) -> WorkloadHeap {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Physical memory: comfortably larger than the heap footprint
    // (superpage alignment wastes some physical space).
    let approx_bytes = spec.objects as u64 * 120;
    let phys = (approx_bytes * 8).next_power_of_two().max(64 << 20);
    let mut heap = Heap::new(HeapConfig {
        phys_bytes: phys,
        layout,
        superpages,
        ..HeapConfig::default()
    });

    let shapes: Vec<(u32, u32, bool)> = (0..spec.objects)
        .map(|_| {
            let is_array = rng.random::<f64>() < spec.array_fraction;
            (
                draw_refs(&mut rng, spec),
                draw_scalars(&mut rng, spec),
                is_array,
            )
        })
        .collect();
    let objects: Vec<ObjRef> = shapes
        .iter()
        .map(|&(r, s, a)| heap.alloc(r, s, a).expect("heap sized for the benchmark"))
        .collect();

    let live_count = ((spec.objects as f64) * spec.live_fraction) as usize;
    let live = &objects[..live_count];
    let dead = &objects[live_count..];
    let hot: Vec<ObjRef> = live.iter().take(spec.hot_set).copied().collect();
    let zipf = Zipf::new(live_count.max(1), spec.popularity_s);

    // Spanning forest over the live set: object i>0 hangs off an earlier
    // live object, guaranteeing reachability from object 0.
    for i in 1..live_count {
        let parent = rng.random_range(0..i);
        let slot_count = heap.nrefs(live[parent]);
        if slot_count == 0 {
            // Parent has no slots; hang off object 0's subtree via a
            // retry walk backwards (object 0 is made wide below).
            let mut p = parent;
            loop {
                if p == 0 || heap.nrefs(live[p]) > 0 {
                    break;
                }
                p -= 1;
            }
            let n = heap.nrefs(live[p]);
            if n > 0 {
                let slot = rng.random_range(0..n);
                if heap.get_ref(live[p], slot).is_none() {
                    heap.set_ref(live[p], slot, Some(live[i]));
                    continue;
                }
            }
            // Fall back: attach to the previous object in a chain slot.
            // (Rare; only when a run of zero-slot objects precedes i.)
            continue;
        }
        let slot = rng.random_range(0..slot_count);
        heap.set_ref(live[parent], slot, Some(live[i]));
    }

    // Cross edges: fill remaining empty slots of live objects with
    // Zipf-popular targets; a fixed fraction aims at the hot set.
    for &obj in live {
        let n = heap.nrefs(obj);
        for slot in 0..n {
            if heap.get_ref(obj, slot).is_some() {
                continue;
            }
            let target = if !hot.is_empty() && rng.random::<f64>() < spec.hot_fraction {
                hot[rng.random_range(0..hot.len())]
            } else {
                live[zipf.sample(&mut rng)]
            };
            heap.set_ref(obj, slot, Some(target));
        }
    }

    // Dead objects chain among themselves (garbage subgraphs).
    for i in 0..dead.len() {
        let n = heap.nrefs(dead[i]);
        for slot in 0..n.min(2) {
            let target = dead[rng.random_range(0..dead.len())];
            heap.set_ref(dead[i], slot, Some(target));
        }
    }

    // Roots: object 0 (the forest root) plus random live objects.
    let mut roots = vec![live[0]];
    for _ in 1..spec.roots.min(live_count) {
        roots.push(live[rng.random_range(0..live_count)]);
    }
    heap.set_roots(&roots);

    let live_objects = heap.reachable_from_roots().len();
    WorkloadHeap {
        heap,
        objects,
        live_objects,
        hot_set: hot,
        rng,
    }
}

/// Mutator churn between two GC pauses: a fraction of live edges are
/// redirected to freshly allocated objects and some subtrees are
/// dropped, so the next pause has both new live objects and new garbage.
///
/// Returns the number of objects allocated.
pub fn churn(w: &mut WorkloadHeap, fraction: f64) -> usize {
    let live: Vec<ObjRef> = w.heap.reachable_from_roots().into_iter().collect();
    if live.is_empty() {
        return 0;
    }
    let n = ((live.len() as f64) * fraction) as usize;
    let mut allocated = 0;
    for _ in 0..n {
        let victim = live[w.rng.random_range(0..live.len())];
        let slots = w.heap.nrefs(victim);
        if slots == 0 {
            continue;
        }
        let slot = w.rng.random_range(0..slots);
        if w.rng.random::<f64>() < 0.5 {
            // Allocate a small object and link it in (new live data).
            let nrefs = w.rng.random_range(0..4);
            let scalars = w.rng.random_range(0..6);
            if let Ok(obj) = w.heap.alloc(nrefs, scalars, false) {
                // Point one of its slots back into the live graph so the
                // graph stays connected and interesting.
                if nrefs > 0 {
                    let back = live[w.rng.random_range(0..live.len())];
                    w.heap.set_ref(obj, 0, Some(back));
                }
                w.heap.set_ref(victim, slot, Some(obj));
                w.objects.push(obj);
                allocated += 1;
            }
        } else {
            // Drop the edge (what it pointed to may become garbage).
            w.heap.set_ref(victim, slot, None);
        }
    }
    allocated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{by_name, DACAPO};
    use tracegc_heap::verify::{check_free_lists, software_mark, software_sweep};

    fn small(name: &str) -> BenchSpec {
        by_name(name).unwrap().scaled(0.02)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_heap(&small("avrora"), LayoutKind::Bidirectional);
        let b = generate_heap(&small("avrora"), LayoutKind::Bidirectional);
        assert_eq!(a.live_objects, b.live_objects);
        assert_eq!(a.objects.len(), b.objects.len());
        assert_eq!(a.heap.reachable_from_roots(), b.heap.reachable_from_roots());
    }

    #[test]
    fn live_fraction_is_roughly_respected() {
        let spec = small("pmd");
        let w = generate_heap(&spec, LayoutKind::Bidirectional);
        let expected = (spec.objects as f64 * spec.live_fraction) as usize;
        // The spanning forest guarantees most of the designated live set
        // is reachable (a few zero-slot parents may strand children).
        assert!(
            w.live_objects > expected * 8 / 10,
            "live {} of expected {}",
            w.live_objects,
            expected
        );
        assert!(w.live_objects <= spec.objects);
    }

    #[test]
    fn all_benchmarks_generate_and_collect() {
        for spec in DACAPO {
            let spec = spec.scaled(0.01);
            let mut w = generate_heap(&spec, LayoutKind::Bidirectional);
            let marked = software_mark(&mut w.heap);
            assert_eq!(marked.len(), w.live_objects, "{}", spec.name);
            software_sweep(&mut w.heap);
            check_free_lists(&w.heap).unwrap();
        }
    }

    #[test]
    fn hot_set_receives_disproportionate_in_edges() {
        let spec = small("luindex");
        let w = generate_heap(&spec, LayoutKind::Bidirectional);
        // Count in-edges per object.
        let mut in_hot = 0u64;
        let mut total = 0u64;
        let hot: std::collections::HashSet<_> = w.hot_set.iter().copied().collect();
        for &obj in &w.objects {
            for r in w.heap.refs_of(obj) {
                total += 1;
                if hot.contains(&r) {
                    in_hot += 1;
                }
            }
        }
        let share = in_hot as f64 / total as f64;
        assert!(
            share > 0.05,
            "hot set should draw a visible share of edges: {share}"
        );
    }

    #[test]
    fn churn_creates_new_garbage_and_new_objects() {
        let spec = small("lusearch");
        let mut w = generate_heap(&spec, LayoutKind::Bidirectional);
        software_mark(&mut w.heap);
        software_sweep(&mut w.heap);
        let allocated = churn(&mut w, 0.2);
        assert!(allocated > 0, "churn should allocate");
        // The next GC still works and frees something.
        let marked = software_mark(&mut w.heap);
        assert!(!marked.is_empty());
        let out = software_sweep(&mut w.heap);
        check_free_lists(&w.heap).unwrap();
        let _ = out;
    }

    #[test]
    fn conventional_layout_generates_identical_graph_size() {
        let spec = small("sunflow");
        let a = generate_heap(&spec, LayoutKind::Bidirectional);
        let b = generate_heap(&spec, LayoutKind::Conventional);
        assert_eq!(a.live_objects, b.live_objects);
    }

    #[test]
    fn arrays_appear_in_the_population() {
        let spec = small("sunflow");
        let w = generate_heap(&spec, LayoutKind::Bidirectional);
        let arrays = w
            .objects
            .iter()
            .filter(|&&o| w.heap.header(o).is_array())
            .count();
        assert!(arrays > 0);
    }
}
