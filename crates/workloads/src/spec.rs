//! Benchmark specifications for the six DaCapo workloads.
//!
//! Parameters are calibrated so that (a) the six benchmarks' GC pause
//! times keep the relative ordering of Fig. 15, (b) GC consumes roughly
//! the Fig. 1a fraction of CPU time when combined with the modelled
//! mutator time, and (c) heap shapes show the popularity skew of
//! Fig. 21a. EXPERIMENTS.md records paper-vs-measured for each.

/// Shape parameters of one synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchSpec {
    /// Benchmark name (matches the DaCapo suite).
    pub name: &'static str,
    /// Objects allocated in the snapshot.
    pub objects: usize,
    /// Mean outgoing references per object (geometric-ish distribution).
    pub mean_refs: f64,
    /// Fraction of objects that are reference arrays (higher out-degree).
    pub array_fraction: f64,
    /// Log-normal `mu` of scalar words per object.
    pub scalar_mu: f64,
    /// Log-normal `sigma` of scalar words per object.
    pub scalar_sigma: f64,
    /// Fraction of objects reachable from the roots.
    pub live_fraction: f64,
    /// Zipf exponent for reference-target popularity.
    pub popularity_s: f64,
    /// Size of the hot set (the paper observes ~56 objects receiving
    /// ~10% of mark operations).
    pub hot_set: usize,
    /// Fraction of non-tree references aimed at the hot set.
    pub hot_fraction: f64,
    /// Root references published to the hwgc space.
    pub roots: usize,
    /// GC pauses during one benchmark run.
    pub pauses: usize,
    /// Modelled mutator cycles between two pauses (the application work
    /// we do not simulate; calibrated against Fig. 1a).
    pub mutator_cycles_per_pause: u64,
    /// Deterministic seed.
    pub seed: u64,
}

impl BenchSpec {
    /// Scales the benchmark's object count (and roots) by `factor`,
    /// for quick runs and Criterion benches.
    pub fn scaled(&self, factor: f64) -> BenchSpec {
        BenchSpec {
            objects: ((self.objects as f64 * factor) as usize).max(64),
            roots: ((self.roots as f64 * factor) as usize).max(4),
            mutator_cycles_per_pause: (self.mutator_cycles_per_pause as f64 * factor) as u64,
            ..*self
        }
    }
}

/// The six DaCapo benchmarks of the paper's evaluation (§VI-A), scaled
/// ~10× down from the paper's "small" + 200 MB-heap configuration.
pub const DACAPO: [BenchSpec; 6] = [
    BenchSpec {
        name: "avrora",
        objects: 110_000,
        mean_refs: 1.9,
        array_fraction: 0.04,
        scalar_mu: 1.0,
        scalar_sigma: 0.8,
        live_fraction: 0.62,
        popularity_s: 0.58,
        hot_set: 56,
        hot_fraction: 0.03,
        roots: 900,
        pauses: 6,
        mutator_cycles_per_pause: 260_000_000,
        seed: 0xA7407A,
    },
    BenchSpec {
        name: "luindex",
        objects: 90_000,
        mean_refs: 2.1,
        array_fraction: 0.06,
        scalar_mu: 1.2,
        scalar_sigma: 0.9,
        live_fraction: 0.55,
        popularity_s: 0.60,
        hot_set: 56,
        hot_fraction: 0.03,
        roots: 700,
        pauses: 8,
        mutator_cycles_per_pause: 181_000_000,
        seed: 0x10913DE,
    },
    BenchSpec {
        name: "lusearch",
        objects: 150_000,
        mean_refs: 2.0,
        array_fraction: 0.05,
        scalar_mu: 1.1,
        scalar_sigma: 1.0,
        live_fraction: 0.45,
        popularity_s: 0.60,
        hot_set: 56,
        hot_fraction: 0.03,
        roots: 1200,
        pauses: 10,
        mutator_cycles_per_pause: 60_000_000,
        seed: 0x105EA2C4,
    },
    BenchSpec {
        name: "pmd",
        objects: 260_000,
        mean_refs: 2.4,
        array_fraction: 0.07,
        scalar_mu: 1.0,
        scalar_sigma: 1.0,
        live_fraction: 0.60,
        popularity_s: 0.62,
        hot_set: 56,
        hot_fraction: 0.03,
        roots: 2000,
        pauses: 7,
        mutator_cycles_per_pause: 297_000_000,
        seed: 0x9319D,
    },
    BenchSpec {
        name: "sunflow",
        objects: 170_000,
        mean_refs: 1.8,
        array_fraction: 0.09,
        scalar_mu: 1.6,
        scalar_sigma: 1.0,
        live_fraction: 0.50,
        popularity_s: 0.58,
        hot_set: 56,
        hot_fraction: 0.03,
        roots: 1100,
        pauses: 8,
        mutator_cycles_per_pause: 236_000_000,
        seed: 0x50F10,
    },
    BenchSpec {
        name: "xalan",
        objects: 300_000,
        mean_refs: 2.3,
        array_fraction: 0.06,
        scalar_mu: 1.1,
        scalar_sigma: 0.9,
        live_fraction: 0.55,
        popularity_s: 0.62,
        hot_set: 56,
        hot_fraction: 0.03,
        roots: 2200,
        pauses: 9,
        mutator_cycles_per_pause: 227_000_000,
        seed: 0xA1A9,
    },
];

/// Looks up a benchmark by name.
///
/// # Examples
///
/// ```
/// let spec = tracegc_workloads::spec::by_name("xalan").unwrap();
/// assert_eq!(spec.name, "xalan");
/// ```
pub fn by_name(name: &str) -> Option<BenchSpec> {
    DACAPO.iter().find(|s| s.name == name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_benchmarks_with_unique_names() {
        let mut names: Vec<&str> = DACAPO.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("avrora").is_some());
        assert!(by_name("h2").is_none());
    }

    #[test]
    fn parameters_are_sane() {
        for s in DACAPO {
            assert!(s.objects > 0);
            assert!((0.0..=1.0).contains(&s.live_fraction));
            assert!((0.0..=1.0).contains(&s.array_fraction));
            assert!((0.0..=1.0).contains(&s.hot_fraction));
            assert!(s.roots > 0 && s.roots < s.objects);
            assert!(s.pauses > 0);
        }
    }

    #[test]
    fn scaling_shrinks_counts() {
        let s = by_name("pmd").unwrap().scaled(0.1);
        assert_eq!(s.objects, 26_000);
        assert_eq!(s.roots, 200);
        assert_eq!(s.name, "pmd");
    }
}
