//! Streamed heap generation for paper-scale and server-scale heaps.
//!
//! [`generate_heap`](crate::generate::generate_heap) retains a
//! `Vec<ObjRef>` of every object ever allocated and draws spanning-forest
//! parents with random access over the whole live prefix — fine at tens
//! of MB, fatal at multi-GB. This module builds heaps in **bounded
//! windows**: the generator keeps only the roots, the hot set, a
//! fixed-size window of recently published objects and counters, so its
//! host footprint is proportional to the *live set* (and for the churny
//! shapes, to the window), never to total allocations. Dead objects are
//! recycled during generation by periodic software mark+sweep passes, so
//! the simulated footprint stays bounded too.
//!
//! Besides the windowed forest (the DaCapo-like shape at scale), three
//! production-traffic shapes exercise the traversal unit the way server
//! heaps do:
//!
//! * [`StreamShape::LruCache`] — a bounded cache under miss churn: the
//!   live set is pinned at capacity while allocation volume is a
//!   multiple of it (high garbage turnover);
//! * [`StreamShape::RequestSession`] — request/session trees allocated
//!   at a high rate with only a survivor fraction retained (a young
//!   generation's traffic, collected by a full-heap tracer);
//! * [`StreamShape::SocialGraph`] — power-law degrees plus supernodes:
//!   a few huge reference arrays (celebrity fan-out) that stress the
//!   tracer's long-object decoupling and the mark queue;
//! * [`StreamShape::ActorMesh`] — an actor system: a mesh of actors
//!   with small-world peer links, each owning a bounded mailbox whose
//!   slots are overwritten by message churn (every overwrite kills the
//!   previous message and its payload), so pointer *mutation* — not
//!   allocation order — decides liveness.

use tracegc_heap::verify::{software_mark_count, software_sweep};
use tracegc_heap::{Heap, HeapConfig, LayoutKind, ObjRef, SpaceMap};
use tracegc_sim::dist::Zipf;
use tracegc_sim::rng::{Rng, StdRng};

/// Shape of a streamed workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamShape {
    /// Windowed spanning forest + Zipf cross edges — the streamed
    /// equivalent of the DaCapo-like snapshot generator.
    Forest {
        /// Mean outgoing references per object.
        mean_refs: f64,
        /// Fraction of objects that are reference arrays.
        array_fraction: f64,
        /// Zipf exponent for cross-edge target popularity.
        popularity_s: f64,
        /// Fraction of cross edges aimed at the hot set.
        hot_fraction: f64,
        /// Dead objects allocated per live object (garbage present at
        /// collection time, as a live fraction < 1 would produce).
        garbage_factor: f64,
    },
    /// A bounded LRU cache under miss churn: `churn_factor` × capacity
    /// entries are evicted and reallocated after the warm-up fill.
    LruCache {
        /// Evictions per cache entry after the initial fill.
        churn_factor: f64,
    },
    /// Request/session heaps: session trees of `session_objects`
    /// allocated at a high rate; only `survivor_fraction` survive.
    RequestSession {
        /// Objects per session tree.
        session_objects: u32,
        /// Fraction of sessions retained (the rest die young).
        survivor_fraction: f64,
    },
    /// A social graph with `supernodes` huge-degree reference arrays
    /// among power-law-degree user objects.
    SocialGraph {
        /// Number of supernodes (celebrity accounts).
        supernodes: usize,
        /// Out-degree of each supernode (reference-array length).
        supernode_degree: u32,
    },
    /// An actor system: actors in a small-world mesh (ring predecessor
    /// plus random peers), each owning a bounded mailbox array whose
    /// slots message churn overwrites in place — the overwritten
    /// message and its payload die on the spot.
    ActorMesh {
        /// Peer references per actor (ring predecessor + random links).
        peers: u32,
        /// Mailbox slots per actor (live messages at steady state).
        mailbox_depth: u32,
        /// Messages sent per actor on average after the initial fill
        /// (allocation churn; the live set stays mailbox-bounded).
        churn_messages: f64,
    },
}

/// Specification of one streamed heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// Workload name (labels experiment rows).
    pub name: &'static str,
    /// The shape generator and its parameters.
    pub shape: StreamShape,
    /// Target number of live objects.
    pub live_objects: usize,
    /// Bounded generation window (recently published objects the
    /// generator may still reference).
    pub window: usize,
    /// Hot-set size (shared targets drawing a disproportionate share of
    /// edges, as in Fig. 21a).
    pub hot_set: usize,
    /// Root references published to the hwgc space (shapes with root
    /// directories may publish more).
    pub roots: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl StreamSpec {
    /// Scales the live-object target by `factor` (floor 64), for smoke
    /// and golden runs.
    pub fn scaled(&self, factor: f64) -> StreamSpec {
        StreamSpec {
            live_objects: ((self.live_objects as f64 * factor) as usize).max(64),
            ..*self
        }
    }
}

/// Generation bookkeeping: what the generator allocated and what it had
/// to remember to do so.
#[derive(Debug, Clone, Copy, Default)]
pub struct GenStats {
    /// Total allocation operations (live + garbage).
    pub allocated: u64,
    /// Peak number of `ObjRef`s the generator retained at any point —
    /// the memory-budget tests pin this to O(live set + window), never
    /// O(allocated).
    pub peak_tracked: usize,
    /// Mark+sweep passes run during generation to recycle garbage.
    pub gen_sweeps: u32,
    /// Cells recycled by those passes.
    pub cells_recycled: u64,
    /// Estimated bytes of live objects (cell bytes of retained objects).
    pub est_live_bytes: u64,
}

/// A streamed heap plus the bookkeeping experiments need. Unlike
/// [`WorkloadHeap`](crate::generate::WorkloadHeap) there is no
/// all-objects vector — only the roots and the hot set survive
/// generation.
#[derive(Debug)]
pub struct StreamedHeap {
    /// The heap, roots already published.
    pub heap: Heap,
    /// Objects reachable from the roots at generation time.
    pub live_objects: usize,
    /// The hot set.
    pub hot_set: Vec<ObjRef>,
    /// Generation statistics.
    pub stats: GenStats,
    /// RNG state after generation, for any subsequent churn.
    pub rng: StdRng,
}

/// Objects with unfilled reference slots, bounded to the window: the
/// forest attaches new children here, and an entry's leftover slots are
/// filled with cross edges when it is evicted ("published").
struct OpenWindow {
    q: std::collections::VecDeque<(ObjRef, u32, u32)>, // (obj, nslots, next)
    cap: usize,
}

impl OpenWindow {
    fn new(cap: usize) -> Self {
        Self {
            q: std::collections::VecDeque::with_capacity(cap.min(1 << 20)),
            cap: cap.max(1),
        }
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    /// Takes one free slot of a window entry for a forest edge.
    fn attach(&mut self, rng: &mut StdRng, heap: &mut Heap, child: ObjRef) -> bool {
        if self.q.is_empty() {
            return false;
        }
        let i = rng.random_range(0..self.q.len());
        let (parent, nslots, next) = self.q[i];
        heap.set_ref(parent, next, Some(child));
        if next + 1 >= nslots {
            self.q.remove(i);
        } else {
            self.q[i].2 = next + 1;
        }
        true
    }

    /// Adds an object with `forest_slots` of its slots reserved for
    /// forest children; returns the entry evicted to keep the window
    /// bounded, if any.
    fn push(&mut self, obj: ObjRef, forest_slots: u32) -> Option<(ObjRef, u32, u32)> {
        if forest_slots > 0 {
            self.q.push_back((obj, forest_slots, 0));
        }
        if self.q.len() > self.cap {
            self.q.pop_front()
        } else {
            None
        }
    }
}

/// The recent-object ring cross edges draw their targets from.
struct RecentRing {
    ring: Vec<ObjRef>,
    next: usize,
}

impl RecentRing {
    fn new(cap: usize) -> Self {
        Self {
            ring: Vec::with_capacity(cap.clamp(1, 1 << 20)),
            next: 0,
        }
    }

    fn push(&mut self, obj: ObjRef) {
        if self.ring.len() < self.ring.capacity() {
            self.ring.push(obj);
        } else {
            self.ring[self.next] = obj;
            self.next = (self.next + 1) % self.ring.len();
        }
    }

    fn sample(&self, idx: usize) -> Option<ObjRef> {
        if self.ring.is_empty() {
            None
        } else {
            Some(self.ring[idx % self.ring.len()])
        }
    }

    fn len(&self) -> usize {
        self.ring.len()
    }
}

/// Sizes the heap for a streamed spec. Thanks to the sparse physical
/// memory, the address-space reservation costs nothing until touched, so
/// every dimension is generous.
fn heap_for(spec: &StreamSpec, layout: LayoutKind, superpages: bool) -> Heap {
    // Per-object footprint ~120 bytes plus shape-specific extras.
    let mut est = spec.live_objects as u64 * 120;
    let mut los = 0u64;
    match spec.shape {
        StreamShape::Forest { garbage_factor, .. } => {
            est = (est as f64 * (1.0 + garbage_factor + 0.5)) as u64;
        }
        // Churny shapes sweep during generation; garbage between two
        // sweeps is bounded by about one live set.
        StreamShape::LruCache { .. }
        | StreamShape::RequestSession { .. }
        | StreamShape::ActorMesh { .. } => {
            est *= 3;
        }
        StreamShape::SocialGraph {
            supernodes,
            supernode_degree,
        } => {
            est *= 2;
            los = supernodes as u64 * (supernode_degree as u64 + 4) * 8 * 2;
        }
    }
    let spaces = SpaceMap::with_heap_capacity(est * 2, los + (128 << 20));
    // Physical frames: heap spaces + page tables + spill headroom.
    let phys_bytes = (spaces.ms_size + spaces.los_size + (512 << 20)).next_power_of_two();
    Heap::new(HeapConfig {
        phys_bytes,
        layout,
        superpages,
        spaces,
        ..HeapConfig::default()
    })
}

/// Generates a streamed heap for `spec` under the given layout.
pub fn generate_streamed(spec: &StreamSpec, layout: LayoutKind) -> StreamedHeap {
    generate_streamed_opts(spec, layout, false)
}

/// Like [`generate_streamed`], with 2 MiB superpage mappings.
pub fn generate_streamed_opts(
    spec: &StreamSpec,
    layout: LayoutKind,
    superpages: bool,
) -> StreamedHeap {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut heap = heap_for(spec, layout, superpages);
    let mut stats = GenStats::default();
    let (roots, hot) = match spec.shape {
        StreamShape::Forest {
            mean_refs,
            array_fraction,
            popularity_s,
            hot_fraction,
            garbage_factor,
        } => gen_forest(
            spec,
            &mut heap,
            &mut rng,
            &mut stats,
            mean_refs,
            array_fraction,
            popularity_s,
            hot_fraction,
            garbage_factor,
        ),
        StreamShape::LruCache { churn_factor } => {
            gen_lru(spec, &mut heap, &mut rng, &mut stats, churn_factor)
        }
        StreamShape::RequestSession {
            session_objects,
            survivor_fraction,
        } => gen_sessions(
            spec,
            &mut heap,
            &mut rng,
            &mut stats,
            session_objects,
            survivor_fraction,
        ),
        StreamShape::SocialGraph {
            supernodes,
            supernode_degree,
        } => gen_social(
            spec,
            &mut heap,
            &mut rng,
            &mut stats,
            supernodes,
            supernode_degree,
        ),
        StreamShape::ActorMesh {
            peers,
            mailbox_depth,
            churn_messages,
        } => gen_actor_mesh(
            spec,
            &mut heap,
            &mut rng,
            &mut stats,
            peers,
            mailbox_depth,
            churn_messages,
        ),
    };
    heap.set_roots(&roots);
    // Count the live set by marking and unmarking — no O(live) set is
    // ever materialized.
    let live_objects = software_mark_count(&mut heap) as usize;
    heap.clear_marks();
    StreamedHeap {
        heap,
        live_objects,
        hot_set: hot,
        stats,
        rng,
    }
}

fn note_peak(stats: &mut GenStats, tracked: usize) {
    stats.peak_tracked = stats.peak_tracked.max(tracked);
}

fn alloc_tracked(
    heap: &mut Heap,
    stats: &mut GenStats,
    nrefs: u32,
    scalars: u32,
    array: bool,
    live: bool,
) -> ObjRef {
    stats.allocated += 1;
    if live {
        stats.est_live_bytes += heap.cell_bytes_needed(nrefs, scalars);
    }
    heap.alloc(nrefs, scalars, array)
        .expect("streamed heap sized for the spec")
}

/// Geometric out-degree around `mean_refs`, arrays excepted — the same
/// distribution the snapshot generator uses.
fn draw_refs(rng: &mut StdRng, mean_refs: f64, array_fraction: f64) -> (u32, bool) {
    if rng.random::<f64>() < array_fraction {
        (rng.random_range(8u32..96), true)
    } else {
        let p = 1.0 / (mean_refs + 1.0);
        let mut k = 0u32;
        while k < 12 && rng.random::<f64>() >= p {
            k += 1;
        }
        (k, false)
    }
}

/// Fills an evicted window entry's leftover slots with cross edges:
/// Zipf-popular recent objects, a fixed fraction aimed at the hot set.
fn publish(
    heap: &mut Heap,
    rng: &mut StdRng,
    (obj, nslots, next): (ObjRef, u32, u32),
    recent: &RecentRing,
    hot: &[ObjRef],
    zipf: &Zipf,
    hot_fraction: f64,
) {
    for slot in next..nslots {
        let target = if !hot.is_empty() && rng.random::<f64>() < hot_fraction {
            hot[rng.random_range(0..hot.len())]
        } else {
            match recent.sample(zipf.sample(rng)) {
                Some(t) => t,
                None => continue,
            }
        };
        heap.set_ref(obj, slot, Some(target));
    }
}

#[allow(clippy::too_many_arguments)]
fn gen_forest(
    spec: &StreamSpec,
    heap: &mut Heap,
    rng: &mut StdRng,
    stats: &mut GenStats,
    mean_refs: f64,
    array_fraction: f64,
    popularity_s: f64,
    hot_fraction: f64,
    garbage_factor: f64,
) -> (Vec<ObjRef>, Vec<ObjRef>) {
    let window = spec.window.max(64);
    let mut open = OpenWindow::new(window);
    let mut recent = RecentRing::new(window);
    let zipf = Zipf::new(window, popularity_s);
    let mut roots: Vec<ObjRef> = Vec::new();
    let mut hot: Vec<ObjRef> = Vec::new();
    let mut garbage_acc = 0.0f64;
    let mut last_dead: Option<ObjRef> = None;

    for i in 0..spec.live_objects {
        let (nrefs, is_array) = draw_refs(rng, mean_refs, array_fraction);
        let scalars = rng.random_range(0u32..8);
        // Object 0 is made wide so the forest always has somewhere to
        // grow from, as in the snapshot generator.
        let (nrefs, is_array) = if i == 0 {
            (64, true)
        } else {
            (nrefs, is_array)
        };
        let obj = alloc_tracked(heap, stats, nrefs, scalars, is_array, true);
        // Attach to the forest through the open window; objects the
        // window cannot reach become roots (rare: only after a long run
        // of zero-slot objects).
        if i == 0 || !open.attach(rng, heap, obj) {
            roots.push(obj);
        }
        if hot.len() < spec.hot_set {
            hot.push(obj);
        }
        // Half the slots (rounded up) grow the forest; the rest are
        // cross-edge slots filled at eviction.
        if let Some(evicted) = open.push(obj, nrefs.div_ceil(2)) {
            publish(heap, rng, evicted, &recent, &hot, &zipf, hot_fraction);
        }
        recent.push(obj);
        // Interleaved garbage: dead chains the sweep must reclaim.
        garbage_acc += garbage_factor;
        while garbage_acc >= 1.0 {
            garbage_acc -= 1.0;
            let dead = alloc_tracked(heap, stats, 2, rng.random_range(0u32..6), false, false);
            heap.set_ref(dead, 0, last_dead);
            last_dead = Some(dead);
        }
        note_peak(
            stats,
            open.len() + recent.len() + roots.len() + hot.len() + 1,
        );
    }
    // Publish everything still open and top up the requested roots.
    while let Some(entry) = open.q.pop_front() {
        publish(heap, rng, entry, &recent, &hot, &zipf, hot_fraction);
    }
    while roots.len() < spec.roots {
        match recent.sample(rng.random_range(0..recent.len().max(1))) {
            Some(obj) => roots.push(obj),
            None => break,
        }
    }
    (roots, hot)
}

fn gen_lru(
    spec: &StreamSpec,
    heap: &mut Heap,
    rng: &mut StdRng,
    stats: &mut GenStats,
    churn_factor: f64,
) -> (Vec<ObjRef>, Vec<ObjRef>) {
    // Each cache entry is an entry object (4 refs) plus a value object:
    // two live objects per slot. Shared metadata singletons form the hot
    // set; entries link to them, never to each other, so an eviction
    // really kills the entry.
    let capacity = (spec.live_objects / 2).max(32);
    let hot: Vec<ObjRef> = (0..spec.hot_set.max(1))
        .map(|_| alloc_tracked(heap, stats, 0, rng.random_range(4u32..12), false, true))
        .collect();
    // The directory: root arrays of 64 slots holding the entries.
    let dirs: Vec<ObjRef> = (0..capacity.div_ceil(64))
        .map(|_| alloc_tracked(heap, stats, 64, 0, true, true))
        .collect();
    let mut entries: Vec<ObjRef> = Vec::with_capacity(capacity);
    let new_entry = |heap: &mut Heap, rng: &mut StdRng, stats: &mut GenStats| -> ObjRef {
        let value = alloc_tracked(heap, stats, 0, rng.random_range(2u32..16), false, true);
        let entry = alloc_tracked(heap, stats, 4, 2, false, true);
        heap.set_ref(entry, 0, Some(value));
        for slot in 1..4 {
            heap.set_ref(entry, slot, Some(hot[rng.random_range(0..hot.len())]));
        }
        entry
    };
    // Warm-up fill.
    for i in 0..capacity {
        let entry = new_entry(heap, rng, stats);
        heap.set_ref(dirs[i / 64], (i % 64) as u32, Some(entry));
        entries.push(entry);
        note_peak(stats, entries.len() + dirs.len() + hot.len());
    }
    let mut roots = dirs.clone();
    roots.extend(hot.iter().copied());
    // Miss churn: evict a random entry, allocate a replacement. A sweep
    // every `capacity` evictions bounds the dead-entry backlog to about
    // one live set.
    let misses = (capacity as f64 * churn_factor) as usize;
    for m in 0..misses {
        let i = rng.random_range(0..capacity);
        let entry = new_entry(heap, rng, stats);
        // The evicted entry and its value become garbage.
        stats.est_live_bytes = stats
            .est_live_bytes
            .saturating_sub(heap.cell_bytes_needed(4, 2) + heap.cell_bytes_needed(0, 8));
        heap.set_ref(dirs[i / 64], (i % 64) as u32, Some(entry));
        entries[i] = entry;
        if (m + 1) % capacity == 0 {
            gen_sweep(heap, &roots, stats);
        }
        note_peak(stats, entries.len() + roots.len() + hot.len());
    }
    (roots, hot)
}

fn gen_sessions(
    spec: &StreamSpec,
    heap: &mut Heap,
    rng: &mut StdRng,
    stats: &mut GenStats,
    session_objects: u32,
    survivor_fraction: f64,
) -> (Vec<ObjRef>, Vec<ObjRef>) {
    let session_objects = session_objects.max(2);
    let hot: Vec<ObjRef> = (0..spec.hot_set.max(1))
        .map(|_| alloc_tracked(heap, stats, 0, rng.random_range(4u32..12), false, true))
        .collect();
    let target_sessions = (spec.live_objects / session_objects as usize).max(1);
    let dirs: Vec<ObjRef> = (0..target_sessions.div_ceil(64))
        .map(|_| alloc_tracked(heap, stats, 64, 0, true, true))
        .collect();
    let mut roots = dirs.clone();
    roots.extend(hot.iter().copied());
    let mut retained = 0usize;
    let mut since_sweep = 0u64;
    // Allocate sessions at a high rate until enough survive. A session
    // is a small random tree; the local scratch is bounded by the
    // session size, not the heap.
    let mut session: Vec<ObjRef> = Vec::with_capacity(session_objects as usize);
    while retained < target_sessions {
        session.clear();
        let root = alloc_tracked(heap, stats, 8, 2, false, false);
        session.push(root);
        for _ in 1..session_objects {
            let nrefs = rng.random_range(0u32..5);
            let obj = alloc_tracked(heap, stats, nrefs, rng.random_range(0u32..6), false, false);
            // Hang off a random earlier session object with a free-ish
            // slot; session trees are tiny, so a retry scan is cheap.
            let parent = session[rng.random_range(0..session.len())];
            let slots = heap.nrefs(parent);
            if slots > 0 {
                heap.set_ref(parent, rng.random_range(0..slots), Some(obj));
            }
            if nrefs > 1 && rng.random::<f64>() < 0.3 {
                heap.set_ref(obj, nrefs - 1, Some(hot[rng.random_range(0..hot.len())]));
            }
            session.push(obj);
        }
        since_sweep += session.len() as u64;
        if rng.random::<f64>() < survivor_fraction {
            heap.set_ref(dirs[retained / 64], (retained % 64) as u32, Some(root));
            retained += 1;
            for &o in &session {
                stats.est_live_bytes += heap.cell_bytes_needed(heap.nrefs(o), 2);
            }
        }
        // Everything not retained is garbage; recycle it periodically so
        // the simulated footprint tracks the survivors, not the
        // allocation rate.
        if since_sweep > (spec.live_objects as u64).max(4096) {
            since_sweep = 0;
            gen_sweep(heap, &roots, stats);
        }
        note_peak(stats, session.len() + roots.len() + hot.len() + dirs.len());
    }
    (roots, hot)
}

fn gen_social(
    spec: &StreamSpec,
    heap: &mut Heap,
    rng: &mut StdRng,
    stats: &mut GenStats,
    supernodes: usize,
    supernode_degree: u32,
) -> (Vec<ObjRef>, Vec<ObjRef>) {
    let supernodes = supernodes.max(1);
    let window = spec.window.max(64);
    // Supernodes: huge reference arrays, allocated up front (they land
    // in the LOS once past the largest size class) and rooted directly.
    let supers: Vec<ObjRef> = (0..supernodes)
        .map(|_| alloc_tracked(heap, stats, supernode_degree, 0, true, true))
        .collect();
    let mut super_fill = vec![0u32; supernodes];
    let mut open = OpenWindow::new(window);
    let mut recent = RecentRing::new(window);
    let zipf = Zipf::new(window, 0.8);
    let mut roots: Vec<ObjRef> = supers.clone();
    // The hot set is the supernode prefix: celebrity accounts draw the
    // popular edges.
    let hot: Vec<ObjRef> = supers.iter().take(spec.hot_set.max(1)).copied().collect();
    let users = spec.live_objects.saturating_sub(supernodes).max(1);
    for i in 0..users {
        // Power-law-ish out-degree: mostly small, occasionally large.
        let nrefs = if rng.random::<f64>() < 0.02 {
            rng.random_range(16u32..64)
        } else {
            rng.random_range(0u32..6)
        };
        let obj = alloc_tracked(heap, stats, nrefs, rng.random_range(0u32..4), false, true);
        if i == 0 || !open.attach(rng, heap, obj) {
            roots.push(obj);
        }
        // Follow edges: most users point at a supernode (in-degree
        // concentration at the celebrities).
        if nrefs > 0 && rng.random::<f64>() < 0.8 {
            let s = zipf.sample(rng) % supernodes;
            heap.set_ref(obj, nrefs - 1, Some(supers[s]));
        }
        // Fan-out: the supernodes' slots fill with users round-robin.
        let s = i % supernodes;
        if super_fill[s] < supernode_degree {
            heap.set_ref(supers[s], super_fill[s], Some(obj));
            super_fill[s] += 1;
        }
        let forest_slots = nrefs.saturating_sub(1).div_ceil(2);
        if let Some(evicted) = open.push(obj, forest_slots) {
            publish(heap, rng, evicted, &recent, &hot, &zipf, 0.1);
        }
        recent.push(obj);
        note_peak(
            stats,
            open.len() + recent.len() + roots.len() + supers.len() + super_fill.len(),
        );
    }
    while let Some(entry) = open.q.pop_front() {
        publish(heap, rng, entry, &recent, &hot, &zipf, 0.1);
    }
    (roots, hot)
}

fn gen_actor_mesh(
    spec: &StreamSpec,
    heap: &mut Heap,
    rng: &mut StdRng,
    stats: &mut GenStats,
    peers: u32,
    mailbox_depth: u32,
    churn_messages: f64,
) -> (Vec<ObjRef>, Vec<ObjRef>) {
    let peers = peers.max(1);
    let mailbox_depth = mailbox_depth.max(1);
    // Steady state per actor: the actor object, its mailbox array and a
    // full mailbox of (message, payload) pairs.
    let per_actor = 2 + 2 * mailbox_depth as usize;
    let n_actors = (spec.live_objects / per_actor).max(8);
    // Shared singletons (dispatcher, config): the hot set, rooted.
    let hot: Vec<ObjRef> = (0..spec.hot_set.max(1))
        .map(|_| alloc_tracked(heap, stats, 0, rng.random_range(4u32..12), false, true))
        .collect();
    // The actor directory: root arrays of 64 slots.
    let dirs: Vec<ObjRef> = (0..n_actors.div_ceil(64))
        .map(|_| alloc_tracked(heap, stats, 64, 0, true, true))
        .collect();
    let mut roots = dirs.clone();
    roots.extend(hot.iter().copied());
    // Spawn the actors: slot 0 holds the mailbox, the rest are peers.
    let mut actors: Vec<ObjRef> = Vec::with_capacity(n_actors);
    let mut mailboxes: Vec<ObjRef> = Vec::with_capacity(n_actors);
    for i in 0..n_actors {
        let mailbox = alloc_tracked(heap, stats, mailbox_depth, 0, true, true);
        let actor = alloc_tracked(heap, stats, peers + 1, 2, false, true);
        heap.set_ref(actor, 0, Some(mailbox));
        heap.set_ref(dirs[i / 64], (i % 64) as u32, Some(actor));
        actors.push(actor);
        mailboxes.push(mailbox);
        note_peak(
            stats,
            actors.len() + mailboxes.len() + roots.len() + hot.len(),
        );
    }
    // Small-world mesh: slot 1 is the ring predecessor (the mesh is one
    // strongly-connected cycle), the rest are random peers.
    for (i, &actor) in actors.iter().enumerate() {
        heap.set_ref(actor, 1, Some(actors[(i + n_actors - 1) % n_actors]));
        for slot in 2..=peers {
            heap.set_ref(actor, slot, Some(actors[rng.random_range(0..n_actors)]));
        }
    }
    // Message churn: each send allocates a (message, payload) pair and
    // writes it over the recipient's next mailbox slot round-robin; once
    // a mailbox is full every further send kills the slot's previous
    // occupant. Liveness is decided by the overwrites, not by when a
    // message was allocated.
    let msg_bytes = heap.cell_bytes_needed(1, 2) + heap.cell_bytes_needed(0, 4);
    let total_msgs = (n_actors as f64 * churn_messages) as usize;
    let mut sends = vec![0u32; n_actors];
    let mut since_sweep = 0usize;
    for _ in 0..total_msgs {
        let a = rng.random_range(0..n_actors);
        let payload = alloc_tracked(heap, stats, 0, 4, false, true);
        let msg = alloc_tracked(heap, stats, 1, 2, false, true);
        heap.set_ref(msg, 0, Some(payload));
        if sends[a] >= mailbox_depth {
            stats.est_live_bytes = stats.est_live_bytes.saturating_sub(msg_bytes);
        }
        heap.set_ref(mailboxes[a], sends[a] % mailbox_depth, Some(msg));
        sends[a] += 1;
        // A sweep every ~live-set's worth of sends bounds the dead
        // backlog, as in the other churny shapes.
        since_sweep += 2;
        if since_sweep > spec.live_objects.max(4096) {
            since_sweep = 0;
            gen_sweep(heap, &roots, stats);
        }
        note_peak(
            stats,
            actors.len() + mailboxes.len() + roots.len() + hot.len(),
        );
    }
    (roots, hot)
}

/// A generation-time collection: marks from `roots` and sweeps, so dead
/// cells are recycled by subsequent allocations.
fn gen_sweep(heap: &mut Heap, roots: &[ObjRef], stats: &mut GenStats) {
    heap.set_roots(roots);
    software_mark_count(heap);
    let outcome = software_sweep(heap);
    stats.gen_sweeps += 1;
    stats.cells_recycled += outcome.freed_cells;
}

/// Ready-made streamed specs for the heapscale sweep, sized in live
/// objects per target live megabyte (~120 bytes/object).
pub fn objects_for_mb(mb: u64) -> usize {
    ((mb << 20) / 120) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegc_heap::verify::{check_free_lists, software_mark, software_sweep};

    fn spec(shape: StreamShape, live: usize) -> StreamSpec {
        StreamSpec {
            name: "test",
            shape,
            live_objects: live,
            window: 512,
            hot_set: 16,
            roots: 32,
            seed: 0x57AE_A201,
        }
    }

    fn forest_shape() -> StreamShape {
        StreamShape::Forest {
            mean_refs: 2.0,
            array_fraction: 0.05,
            popularity_s: 0.6,
            hot_fraction: 0.05,
            garbage_factor: 0.5,
        }
    }

    #[test]
    fn forest_is_deterministic_and_mostly_live() {
        let s = spec(forest_shape(), 4000);
        let a = generate_streamed(&s, LayoutKind::Bidirectional);
        let b = generate_streamed(&s, LayoutKind::Bidirectional);
        assert_eq!(a.live_objects, b.live_objects);
        assert_eq!(a.stats.allocated, b.stats.allocated);
        assert_eq!(a.heap.reachable_from_roots(), b.heap.reachable_from_roots());
        // The window forest keeps nearly every designated-live object
        // reachable.
        assert!(
            a.live_objects as f64 > 4000.0 * 0.95,
            "live {} of 4000",
            a.live_objects
        );
        // Garbage was really allocated on top.
        assert!(a.stats.allocated >= 4000 + 1500);
    }

    #[test]
    fn social_graph_has_supernodes_with_disproportionate_degree() {
        let degree = 600u32;
        let g = generate_streamed(
            &spec(
                StreamShape::SocialGraph {
                    supernodes: 8,
                    supernode_degree: degree,
                },
                5000,
            ),
            LayoutKind::Bidirectional,
        );
        // The hot set is the supernode prefix: full configured degree.
        assert!(!g.hot_set.is_empty());
        for &s in &g.hot_set {
            assert_eq!(g.heap.nrefs(s), degree);
            assert!(g.heap.header(s).is_array());
        }
        // Degree distribution: supernodes sit far above the user mean,
        // and draw a large share of all in-edges.
        let supernode_set: std::collections::HashSet<_> = g.hot_set.iter().copied().collect();
        let mut user_degrees = 0u64;
        let mut users = 0u64;
        let mut edges = 0u64;
        let mut into_supernodes = 0u64;
        for obj in g.heap.iter_objects() {
            if !supernode_set.contains(&obj) {
                user_degrees += g.heap.nrefs(obj) as u64;
                users += 1;
            }
            for r in g.heap.refs_of(obj) {
                edges += 1;
                if supernode_set.contains(&r) {
                    into_supernodes += 1;
                }
            }
        }
        let mean_user_degree = user_degrees as f64 / users as f64;
        assert!(
            degree as f64 > 50.0 * mean_user_degree,
            "supernode degree {degree} vs user mean {mean_user_degree}"
        );
        let share = into_supernodes as f64 / edges as f64;
        assert!(
            share > 0.2,
            "supernodes should draw a large in-edge share: {share}"
        );
    }

    #[test]
    fn lru_live_set_is_pinned_at_capacity_under_churn() {
        let live = 4000usize;
        let lo = generate_streamed(
            &spec(StreamShape::LruCache { churn_factor: 0.5 }, live),
            LayoutKind::Bidirectional,
        );
        let hi = generate_streamed(
            &spec(StreamShape::LruCache { churn_factor: 4.0 }, live),
            LayoutKind::Bidirectional,
        );
        // Churn multiplies allocations, not the live set.
        assert!(hi.stats.allocated > lo.stats.allocated * 2);
        assert_eq!(hi.live_objects, lo.live_objects);
        let expect = live as f64;
        assert!(
            (hi.live_objects as f64) > expect * 0.9 && (hi.live_objects as f64) < expect * 1.2,
            "live {} for target {live}",
            hi.live_objects
        );
        // Generation-time sweeps recycled the evicted garbage.
        assert!(hi.stats.gen_sweeps > 0);
        assert!(hi.stats.cells_recycled > 0);
    }

    #[test]
    fn request_sessions_allocate_far_more_than_they_retain() {
        let g = generate_streamed(
            &spec(
                StreamShape::RequestSession {
                    session_objects: 24,
                    survivor_fraction: 0.1,
                },
                3000,
            ),
            LayoutKind::Bidirectional,
        );
        // ~10% survivor rate → allocation volume is a large multiple of
        // the live set (high allocation rate, most of it garbage).
        assert!(
            g.stats.allocated as f64 > 4.0 * g.live_objects as f64,
            "allocated {} vs live {}",
            g.stats.allocated,
            g.live_objects
        );
        assert!(g.stats.gen_sweeps > 0, "sessions must recycle garbage");
    }

    #[test]
    fn actor_mesh_churn_grows_allocations_not_the_live_set() {
        let live = 4000usize;
        let shape = |churn_messages| StreamShape::ActorMesh {
            peers: 3,
            mailbox_depth: 4,
            churn_messages,
        };
        let lo = generate_streamed(&spec(shape(6.0), live), LayoutKind::Bidirectional);
        let lo2 = generate_streamed(&spec(shape(6.0), live), LayoutKind::Bidirectional);
        let hi = generate_streamed(&spec(shape(24.0), live), LayoutKind::Bidirectional);
        // Deterministic.
        assert_eq!(lo.live_objects, lo2.live_objects);
        assert_eq!(lo.stats.allocated, lo2.stats.allocated);
        assert_eq!(
            lo.heap.reachable_from_roots(),
            lo2.heap.reachable_from_roots()
        );
        // Message churn multiplies allocations while the live set stays
        // mailbox-bounded — overwrites kill what they replace.
        assert!(hi.stats.allocated > lo.stats.allocated * 2);
        assert!(
            (hi.live_objects as f64) < live as f64 * 1.1,
            "live {} for target {live}",
            hi.live_objects
        );
        assert!(
            (hi.live_objects as f64) > live as f64 * 0.5,
            "live {} for target {live}",
            hi.live_objects
        );
        // More churn can only fill more mailbox slots, never unbound them.
        assert!(hi.live_objects >= lo.live_objects);
        assert!(hi.stats.gen_sweeps > 0, "churn must trigger sweeps");
        // Peak tracked memory is live-set-bounded, not churn-bounded.
        assert_eq!(lo.stats.peak_tracked, hi.stats.peak_tracked);
    }

    #[test]
    fn generator_peak_memory_tracks_live_set_not_allocations() {
        // Quadrupling the churn (total allocations) must leave the
        // generator's tracked-object peak unchanged; growing the live
        // set grows it.
        let live = 4000usize;
        let lo = generate_streamed(
            &spec(StreamShape::LruCache { churn_factor: 1.0 }, live),
            LayoutKind::Bidirectional,
        );
        let hi = generate_streamed(
            &spec(StreamShape::LruCache { churn_factor: 4.0 }, live),
            LayoutKind::Bidirectional,
        );
        assert!(hi.stats.allocated > lo.stats.allocated * 2);
        assert_eq!(
            lo.stats.peak_tracked, hi.stats.peak_tracked,
            "peak tracked objects must not grow with allocation volume"
        );
        // Budget: the tracker never holds more than the live set plus
        // window-sized slack.
        let s = spec(StreamShape::LruCache { churn_factor: 4.0 }, live);
        assert!(
            hi.stats.peak_tracked <= live + s.window + s.roots + s.hot_set + 256,
            "peak {} exceeds the live-set budget",
            hi.stats.peak_tracked
        );
        // Same property for the forest: garbage_factor changes
        // allocations, peak stays window-bounded.
        let f = |garbage_factor| {
            generate_streamed(
                &spec(
                    StreamShape::Forest {
                        mean_refs: 2.0,
                        array_fraction: 0.05,
                        popularity_s: 0.6,
                        hot_fraction: 0.05,
                        garbage_factor,
                    },
                    live,
                ),
                LayoutKind::Bidirectional,
            )
        };
        let (a, b) = (f(0.1), f(2.0));
        assert!(b.stats.allocated > a.stats.allocated + live as u64);
        let budget = 2 * s.window + s.roots + s.hot_set + 64;
        assert!(
            a.stats.peak_tracked <= budget && b.stats.peak_tracked <= budget,
            "forest peaks {} / {} exceed window budget {budget}",
            a.stats.peak_tracked,
            b.stats.peak_tracked
        );
    }

    #[test]
    fn generation_sweeps_bound_the_simulated_footprint() {
        // High churn with periodic sweeps: the touched physical
        // footprint stays well under the total allocated bytes because
        // cells are recycled in place.
        let g = generate_streamed(
            &spec(StreamShape::LruCache { churn_factor: 8.0 }, 4000),
            LayoutKind::Bidirectional,
        );
        let allocated_bytes = g.heap.stats().bytes_allocated;
        let resident = g.heap.phys.resident_bytes();
        assert!(
            resident < allocated_bytes,
            "resident {resident} should be below total allocated {allocated_bytes}"
        );
    }

    #[test]
    fn all_shapes_generate_collect_and_sweep() {
        let shapes = [
            ("forest", forest_shape()),
            ("lru", StreamShape::LruCache { churn_factor: 2.0 }),
            (
                "sessions",
                StreamShape::RequestSession {
                    session_objects: 24,
                    survivor_fraction: 0.2,
                },
            ),
            (
                "social",
                StreamShape::SocialGraph {
                    supernodes: 8,
                    supernode_degree: 600,
                },
            ),
            (
                "actors",
                StreamShape::ActorMesh {
                    peers: 3,
                    mailbox_depth: 4,
                    churn_messages: 8.0,
                },
            ),
        ];
        for (name, shape) in shapes {
            let mut g = generate_streamed(&spec(shape, 3000), LayoutKind::Bidirectional);
            assert!(g.live_objects > 0, "{name}: nothing live");
            let marked = software_mark(&mut g.heap);
            assert_eq!(marked.len(), g.live_objects, "{name}: mark mismatch");
            software_sweep(&mut g.heap);
            check_free_lists(&g.heap).unwrap();
        }
    }
}
