//! The lusearch query-latency simulation behind Fig. 1b.
//!
//! The paper "took the lusearch DaCapo benchmark (which simulates
//! interactive requests to the Lucene search engine) and recorded
//! request latencies of a 10K query run (discarding the first 1K queries
//! for warm-up), assuming that a request is issued every 100 ms and
//! accounting for coordinated omission" (§II). The result: without GC
//! most requests complete quickly, but GC pauses introduce stragglers
//! two orders of magnitude longer than the average request.
//!
//! This module reproduces that experiment as a single-server FIFO queue:
//! queries arrive on a fixed schedule, service times are log-normal, and
//! GC pauses (whose lengths come from the *measured* collector pauses)
//! block the server. Latency is measured from the *intended* issue time
//! — the coordinated-omission correction.

use tracegc_sim::dist::log_normal;
use tracegc_sim::rng::StdRng;
use tracegc_sim::LatencyRecorder;

/// Parameters of the query experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryLatencySpec {
    /// Total queries issued (paper: 10,000).
    pub total_queries: usize,
    /// Warm-up queries discarded (paper: 1,000).
    pub warmup_queries: usize,
    /// Microseconds between intended query issues (paper: 100 ms).
    pub inter_arrival_us: u64,
    /// Log-normal `mu` of service time in microseconds.
    pub service_mu: f64,
    /// Log-normal `sigma` of service time.
    pub service_sigma: f64,
    /// Queries processed between two GC pauses (allocation-driven).
    pub queries_per_gc: usize,
    /// Seed for service-time randomness.
    pub seed: u64,
}

impl Default for QueryLatencySpec {
    fn default() -> Self {
        Self {
            total_queries: 10_000,
            warmup_queries: 1_000,
            inter_arrival_us: 100_000,
            service_mu: 8.3, // e^8.3 us ~ 4 ms median service
            service_sigma: 0.5,
            queries_per_gc: 120,
            seed: 0x1b,
        }
    }
}

/// The query-latency simulator.
#[derive(Debug)]
pub struct QueryLatencySim {
    spec: QueryLatencySpec,
}

impl QueryLatencySim {
    /// Creates the simulator.
    pub fn new(spec: QueryLatencySpec) -> Self {
        Self { spec }
    }

    /// Runs the experiment with the given GC pause length (µs), cycling
    /// through `pause_lengths_us` each time a GC triggers. Returns
    /// latencies in microseconds (post-warm-up only) and, separately,
    /// which recorded queries were "close to a pause" (the paper's
    /// Fig. 1b colors queries by pause proximity).
    ///
    /// Passing an empty slice simulates the no-GC baseline.
    pub fn run(&self, pause_lengths_us: &[u64]) -> (LatencyRecorder, Vec<bool>) {
        let spec = &self.spec;
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut recorder = LatencyRecorder::new();
        let mut near_pause = Vec::new();
        let mut server_free_at: u64 = 0;
        let mut queries_since_gc = 0usize;
        let mut pause_idx = 0usize;

        for q in 0..spec.total_queries {
            let intended = q as u64 * spec.inter_arrival_us;
            // GC triggers by allocation, i.e. by queries processed.
            let mut hit_pause = false;
            if !pause_lengths_us.is_empty() && queries_since_gc >= spec.queries_per_gc {
                let pause = pause_lengths_us[pause_idx % pause_lengths_us.len()];
                pause_idx += 1;
                // The pause begins when the server would next be free.
                let pause_start = server_free_at.max(intended);
                server_free_at = pause_start + pause;
                queries_since_gc = 0;
                hit_pause = true;
            }
            let service = log_normal(&mut rng, spec.service_mu, spec.service_sigma) as u64;
            let start = server_free_at.max(intended);
            let done = start + service;
            server_free_at = done;
            queries_since_gc += 1;
            if q >= spec.warmup_queries {
                // Coordinated omission: latency from the intended issue.
                recorder.record(done - intended);
                near_pause.push(hit_pause || start > intended);
            }
        }
        (recorder, near_pause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> QueryLatencySpec {
        QueryLatencySpec {
            total_queries: 2_000,
            warmup_queries: 200,
            ..QueryLatencySpec::default()
        }
    }

    #[test]
    fn no_gc_baseline_has_no_long_tail() {
        let sim = QueryLatencySim::new(small_spec());
        let (mut lat, _) = sim.run(&[]);
        let p50 = lat.percentile(50.0).unwrap();
        let p999 = lat.percentile(99.9).unwrap();
        // Without GC the tail is within one order of magnitude.
        assert!(p999 < p50 * 10, "p50={p50} p999={p999}");
    }

    #[test]
    fn gc_pauses_create_stragglers() {
        let sim = QueryLatencySim::new(small_spec());
        let (mut no_gc, _) = sim.run(&[]);
        // 150 ms pauses, as a stop-the-world collector would produce.
        let (mut with_gc, _) = sim.run(&[150_000]);
        let base_p50 = no_gc.percentile(50.0).unwrap();
        let tail = with_gc.percentile(99.5).unwrap();
        // The paper: stragglers "two orders of magnitude longer than the
        // average request".
        assert!(
            tail > base_p50 * 20,
            "GC tail should dwarf the median: {tail} vs {base_p50}"
        );
        // But the median is barely affected.
        let gc_p50 = with_gc.percentile(50.0).unwrap();
        assert!(gc_p50 < base_p50 * 3);
    }

    #[test]
    fn shorter_pauses_shrink_the_tail() {
        let sim = QueryLatencySim::new(small_spec());
        let (mut long, _) = sim.run(&[150_000]);
        let (mut short, _) = sim.run(&[15_000]);
        assert!(short.percentile(99.5).unwrap() < long.percentile(99.5).unwrap());
    }

    #[test]
    fn warmup_is_discarded() {
        let spec = small_spec();
        let sim = QueryLatencySim::new(spec);
        let (lat, flags) = sim.run(&[]);
        assert_eq!(lat.len(), spec.total_queries - spec.warmup_queries);
        assert_eq!(flags.len(), lat.len());
    }

    #[test]
    fn near_pause_flags_mark_the_stragglers() {
        let sim = QueryLatencySim::new(small_spec());
        let (_, flags) = sim.run(&[200_000]);
        assert!(flags.iter().any(|&f| f), "some queries near a pause");
        assert!(flags.iter().any(|&f| !f), "most queries unaffected");
    }

    #[test]
    fn deterministic() {
        let sim = QueryLatencySim::new(small_spec());
        let (mut a, _) = sim.run(&[100_000]);
        let (mut b, _) = sim.run(&[100_000]);
        assert_eq!(a.cdf(), b.cdf());
    }
}
