//! Synthetic DaCapo-inspired workloads.
//!
//! The paper evaluates on six DaCapo benchmarks (avrora, luindex,
//! lusearch, pmd, sunflow, xalan) running on JikesRVM with the *small*
//! input size and a 200 MB heap cap (§VI-A). We cannot run Java here, so
//! this crate generates heaps whose *shape* matches what the traversal
//! and reclamation work depends on: object count, size distribution,
//! out-degree distribution, reference-popularity skew (a ~56-object hot
//! set receiving ~10% of mark operations, Fig. 21a), live fraction, and
//! the relative scale of the six benchmarks. Everything is seeded and
//! deterministic.
//!
//! Scale substitution (documented in DESIGN.md): heaps are ~10× smaller
//! than the paper's so that full cycle-level simulation of every pause
//! runs quickly; all reported comparisons are unit-vs-CPU ratios, which
//! are scale-stable.
//!
//! The crate also provides the mutator-churn model used for multi-pause
//! runs and the lusearch query-latency simulation behind Fig. 1b.

pub mod generate;
pub mod queries;
pub mod spec;
pub mod stream;

pub use generate::{churn, generate_heap, WorkloadHeap};
pub use queries::{QueryLatencySim, QueryLatencySpec};
pub use spec::{BenchSpec, DACAPO};
pub use stream::{generate_streamed, GenStats, StreamShape, StreamSpec, StreamedHeap};
