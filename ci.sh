#!/usr/bin/env bash
# The deterministic test wall: everything CI runs, runnable locally.
#
#   ./ci.sh
#
# Requires only a Rust toolchain — the workspace builds with zero
# registry dependencies, so every step runs with --offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

echo "ci.sh: all green"
