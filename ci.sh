#!/usr/bin/env bash
# The deterministic test wall: everything CI runs, runnable locally.
#
#   ./ci.sh
#
# Requires only a Rust toolchain — the workspace builds with zero
# registry dependencies, so every step runs with --offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline >/dev/null

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

echo "==> metrics sidecar smoke (fig15, --jobs 1 vs --jobs 8)"
SIDECAR_DIR=$(mktemp -d)
trap 'rm -rf "$SIDECAR_DIR"' EXIT
./target/release/experiments --quick --jobs 1 --out "$SIDECAR_DIR/j1" fig15 >/dev/null
./target/release/experiments --quick --jobs 8 --out "$SIDECAR_DIR/j8" fig15 >/dev/null
test -s "$SIDECAR_DIR/j1/fig15.metrics.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
    "$SIDECAR_DIR/j1/fig15.metrics.json" 2>/dev/null \
    || grep -q '"schema": "tracegc-metrics-v1"' "$SIDECAR_DIR/j1/fig15.metrics.json"
cmp "$SIDECAR_DIR/j1/fig15.metrics.json" "$SIDECAR_DIR/j8/fig15.metrics.json"

echo "==> pacing equivalence (fastforward vs lockstep, outputs byte-identical)"
# The event-driven fast-forward scheduler must be invisible in every
# output: same CSVs, same metrics sidecars, bit for bit, as the
# cycle-by-cycle lockstep reference (tests/engine_equivalence.rs pins
# the same property per driver; this gate pins it end-to-end through
# the experiment registry).
./target/release/experiments --quick --sched fastforward \
    --out "$SIDECAR_DIR/pace_ff" fig15 fig20 conc >/dev/null
./target/release/experiments --quick --sched lockstep \
    --out "$SIDECAR_DIR/pace_ls" fig15 fig20 conc >/dev/null
for f in fig15.csv fig15.metrics.json fig20.csv fig20.metrics.json \
         conc.csv conc.metrics.json; do
    cmp "$SIDECAR_DIR/pace_ff/$f" "$SIDECAR_DIR/pace_ls/$f"
done

echo "==> partition-pool equivalence (--par-engines 4 vs single-threaded, byte-identical)"
# The bulk-synchronous partition pool must be invisible in every
# output: each sweep experiment's grid points run on 4 workers yet the
# CSVs and sidecars must match the single-threaded run bit for bit
# (tests/metrics_sidecar.rs pins the full jobs x par-engines cross;
# this gate pins it end-to-end through the CLI).
./target/release/experiments --quick --par-engines 1 \
    --out "$SIDECAR_DIR/par1" fig15 fig20 conc multi multiunit >/dev/null
./target/release/experiments --quick --par-engines 4 \
    --out "$SIDECAR_DIR/par4" fig15 fig20 conc multi multiunit >/dev/null
for f in fig15.csv fig15.metrics.json fig20.csv fig20.metrics.json \
         conc.csv conc.metrics.json multi.csv multi.metrics.json \
         multiunit.csv multiunit.metrics.json; do
    cmp "$SIDECAR_DIR/par1/$f" "$SIDECAR_DIR/par4/$f"
done

echo "==> bench doc smoke (experiments --bench writes BENCH_10.json)"
./target/release/experiments --quick --bench --out "$SIDECAR_DIR/bench" fig15 >/dev/null
test -s "$SIDECAR_DIR/bench/BENCH_10.json"
grep -q '"schema": "tracegc-bench-v1"' "$SIDECAR_DIR/bench/BENCH_10.json"
grep -q '"peak_rss_kb_fastforward"' "$SIDECAR_DIR/bench/BENCH_10.json"
grep -q '"par_engines"' "$SIDECAR_DIR/bench/BENCH_10.json"
grep -q '"host_cpus"' "$SIDECAR_DIR/bench/BENCH_10.json"
grep -q '"wall_s_parallel"' "$SIDECAR_DIR/bench/BENCH_10.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
    "$SIDECAR_DIR/bench/BENCH_10.json" 2>/dev/null \
    || grep -q '"speedup_parallel"' "$SIDECAR_DIR/bench/BENCH_10.json"

echo "==> paper calibration gate (experiments --calibrate on committed results/)"
# The committed results/ (scale 0.25) must conform to the paper's
# numbers: every tolerance band and trend assertion in
# crates/harness/src/calib.rs, exit 0 or the build fails. Run in a
# scratch copy so the gate also proves the report is byte-identical to
# the committed results/calibration.json without dirtying the tree.
mkdir -p "$SIDECAR_DIR/calib_committed"
cp results/*.csv results/*.metrics.json "$SIDECAR_DIR/calib_committed/"
./target/release/experiments --calibrate --out "$SIDECAR_DIR/calib_committed"
cmp "$SIDECAR_DIR/calib_committed/calibration.json" results/calibration.json
# Violations must exit 4 (an empty corpus fails every check).
mkdir -p "$SIDECAR_DIR/calib_empty"
rc=0
./target/release/experiments --calibrate --out "$SIDECAR_DIR/calib_empty" >/dev/null 2>&1 || rc=$?
test "$rc" -eq 4

echo "==> faultsweep smoke (golden scale; must degrade deterministically, exit 2)"
# At the golden scale the sweep always hits at least one fallback, so
# the exit-code contract (0 clean / 2 degraded / 3 failed) is testable:
# anything but 2 here means the fault pipeline or the exit mapping broke.
rc=0
./target/release/experiments --scale 0.015 --pauses 1 --jobs 1 \
    --out "$SIDECAR_DIR/fs1" faultsweep >/dev/null 2>&1 || rc=$?
test "$rc" -eq 2
rc=0
./target/release/experiments --scale 0.015 --pauses 1 --jobs 8 \
    --out "$SIDECAR_DIR/fs8" faultsweep >/dev/null 2>&1 || rc=$?
test "$rc" -eq 2
cmp "$SIDECAR_DIR/fs1/faultsweep.csv" "$SIDECAR_DIR/fs8/faultsweep.csv"
cmp "$SIDECAR_DIR/fs1/faultsweep.metrics.json" "$SIDECAR_DIR/fs8/faultsweep.metrics.json"
cmp "$SIDECAR_DIR/fs1/faultsweep.csv" tests/golden/faultsweep.csv
# The fault grid on the partition pool: same bytes, same exit code.
rc=0
./target/release/experiments --scale 0.015 --pauses 1 --par-engines 4 \
    --out "$SIDECAR_DIR/fs_par" faultsweep >/dev/null 2>&1 || rc=$?
test "$rc" -eq 2
cmp "$SIDECAR_DIR/fs_par/faultsweep.csv" "$SIDECAR_DIR/fs1/faultsweep.csv"
cmp "$SIDECAR_DIR/fs_par/faultsweep.metrics.json" "$SIDECAR_DIR/fs1/faultsweep.metrics.json"
# Fault injection (traps, retries, fallbacks) under lockstep must
# reproduce the fast-forward run above byte for byte.
rc=0
./target/release/experiments --scale 0.015 --pauses 1 --jobs 1 --sched lockstep \
    --out "$SIDECAR_DIR/fs_ls" faultsweep >/dev/null 2>&1 || rc=$?
test "$rc" -eq 2
cmp "$SIDECAR_DIR/fs_ls/faultsweep.csv" "$SIDECAR_DIR/fs1/faultsweep.csv"
cmp "$SIDECAR_DIR/fs_ls/faultsweep.metrics.json" "$SIDECAR_DIR/fs1/faultsweep.metrics.json"

echo "==> heapscale smoke (golden cmp + byte-equality across --jobs x --par-engines)"
# The production-heap-size sweep at the golden scale: bytes must match
# the committed goldens and be invariant to both parallelism knobs.
./target/release/experiments --scale 0.015 --pauses 1 --jobs 1 --par-engines 1 \
    --out "$SIDECAR_DIR/hs1" heapscale >/dev/null
cmp "$SIDECAR_DIR/hs1/heapscale.csv" tests/golden/heapscale.csv
cmp "$SIDECAR_DIR/hs1/heapscale.metrics.json" tests/golden/heapscale.metrics.json
./target/release/experiments --scale 0.015 --pauses 1 --jobs 4 --par-engines 4 \
    --out "$SIDECAR_DIR/hs4" heapscale >/dev/null
cmp "$SIDECAR_DIR/hs1/heapscale.csv" "$SIDECAR_DIR/hs4/heapscale.csv"
cmp "$SIDECAR_DIR/hs1/heapscale.metrics.json" "$SIDECAR_DIR/hs4/heapscale.metrics.json"

echo "==> fleet smoke (golden cmp + parallelism/pacing cross + exit-code contract)"
# Multi-tenant serving at the golden scale: bytes must match the
# committed goldens and be invariant to --jobs, --par-engines and the
# scheduler pacing. Clean fleets exit 0; with injected faults tenants
# degrade to the software fallback (exit 2) but never fail the
# differential reachability check (which would exit 3).
./target/release/experiments --scale 0.015 --pauses 1 --jobs 1 --par-engines 1 \
    --out "$SIDECAR_DIR/fl1" fleet >/dev/null
for f in fleet_0.csv fleet_1.csv fleet.metrics.json; do
    cmp "$SIDECAR_DIR/fl1/$f" "tests/golden/$f"
done
./target/release/experiments --scale 0.015 --pauses 1 --jobs 4 --par-engines 4 \
    --sched lockstep --out "$SIDECAR_DIR/fl4" fleet >/dev/null
for f in fleet_0.csv fleet_1.csv fleet.metrics.json; do
    cmp "$SIDECAR_DIR/fl1/$f" "$SIDECAR_DIR/fl4/$f"
done
rc=0
./target/release/experiments --scale 0.015 --pauses 1 --fault-rate 1e-3 --fault-seed 7 \
    --out "$SIDECAR_DIR/fl_fault" fleet >/dev/null 2>&1 || rc=$?
test "$rc" -eq 2

echo "==> heapscale paper-scale run under the host-RSS ceiling (~5 min single-core)"
# The acceptance run of the memory-lean representation (DESIGN.md §11):
# the paper-exact 200 MB heap and the >=1 GB-live-set server LRU, end
# to end (mark + sweep) at --scale 1.0. The ceiling is stated as a
# multiple of the simulated footprint: the server row's sparse physical
# memory holds ~2.2 GB of resident chunks (the deterministic
# resident-mb column in heapscale.csv), and host peak RSS must stay
# under 3x that — generation churn, page tables, the spill region and
# allocator retention across rows live inside the multiple. Exit 5
# (from --rss-ceiling-mb) means the representation regressed.
./target/release/experiments --scale 1.0 --pauses 1 --rss-ceiling-mb 6786 \
    --out "$SIDECAR_DIR/hs_full" heapscale >/dev/null

echo "ci.sh: all green"
