//! Differential correctness: the hardware traversal/reclamation units
//! and the software collector must agree *exactly* — same marked-object
//! count, same marked-address fingerprint, same number of freed cells —
//! on randomized smoke-scale heaps across the whole benchmark suite.

use tracegc::heap::verify::{software_mark, software_sweep};
use tracegc::heap::{Heap, LayoutKind};
use tracegc::hwgc::{GcUnitConfig, ReclamationUnit, TraversalUnit};
use tracegc::mem::MemSystem;
use tracegc::workloads::generate::generate_heap;
use tracegc::workloads::spec::{BenchSpec, DACAPO};

/// Order-independent fingerprint of the marked addresses (FNV-1a over
/// the sorted address list), so two heaps can be compared without
/// shipping the whole set around in assertion messages.
fn marked_fingerprint(heap: &Heap) -> (u64, u64) {
    let marked = heap.marked_set();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for obj in &marked {
        for byte in obj.addr().to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    (marked.len() as u64, hash)
}

/// Marks and sweeps `spec`'s heap in hardware and in software, then
/// compares every observable outcome.
fn assert_hw_matches_sw(spec: &BenchSpec) {
    // Two identical heaps from the same seed.
    let mut hw = generate_heap(spec, LayoutKind::Bidirectional);
    let mut sw = generate_heap(spec, LayoutKind::Bidirectional);

    // Mark: cycle-level unit vs the functional software collector.
    let mut mem = MemSystem::ddr3(Default::default());
    let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut hw.heap);
    let mark = unit.run_mark(&mut hw.heap, &mut mem, 0);
    let sw_marked = software_mark(&mut sw.heap);

    let (hw_count, hw_hash) = marked_fingerprint(&hw.heap);
    let (sw_count, sw_hash) = marked_fingerprint(&sw.heap);
    assert_eq!(
        hw_count, sw_count,
        "{}: unit marked {hw_count} objects, software marked {sw_count}",
        spec.name
    );
    assert_eq!(
        hw_hash, sw_hash,
        "{}: same count but different marked addresses",
        spec.name
    );
    assert_eq!(
        mark.objects_marked as usize,
        sw_marked.len(),
        "{}: unit's own counter disagrees with the software set",
        spec.name
    );

    // Sweep: the reclamation unit must free exactly what the software
    // sweep frees.
    let mut sweeper = ReclamationUnit::new(GcUnitConfig::default(), &hw.heap);
    let hw_sweep = sweeper.run_sweep(&mut hw.heap, &mut mem, 0);
    let sw_sweep = software_sweep(&mut sw.heap);
    assert_eq!(
        hw_sweep.cells_freed, sw_sweep.freed_cells,
        "{}: unit freed {} cells, software freed {}",
        spec.name, hw_sweep.cells_freed, sw_sweep.freed_cells
    );
    assert_eq!(
        hw.heap.total_free_cells(),
        sw.heap.total_free_cells(),
        "{}: free-list totals diverge after sweep",
        spec.name
    );
}

#[test]
fn every_benchmark_agrees_at_smoke_scale() {
    for spec in DACAPO {
        assert_hw_matches_sw(&spec.scaled(0.015));
    }
}

#[test]
fn randomized_seeds_agree() {
    // Re-seed one benchmark many times: the agreement must hold for
    // arbitrary object graphs, not just the six canned seeds.
    let base = DACAPO[0].scaled(0.015);
    for i in 0..10u64 {
        let mut spec = base;
        spec.seed = spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i + 1);
        assert_hw_matches_sw(&spec);
    }
}

#[test]
fn agreement_survives_nondefault_unit_configs() {
    // Tiny mark queue (forces spilling), compression, no mark-bit
    // cache: correctness must not depend on the performance knobs.
    let spec = DACAPO[1].scaled(0.015);
    for cfg in [
        GcUnitConfig {
            markq_entries: 16,
            markq_side: 8,
            ..GcUnitConfig::default()
        },
        GcUnitConfig {
            compress: true,
            ..GcUnitConfig::default()
        },
        GcUnitConfig {
            markbit_cache: 0,
            ..GcUnitConfig::default()
        },
    ] {
        let mut hw = generate_heap(&spec, LayoutKind::Bidirectional);
        let mut sw = generate_heap(&spec, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(cfg, &mut hw.heap);
        unit.run_mark(&mut hw.heap, &mut mem, 0);
        software_mark(&mut sw.heap);
        assert_eq!(
            marked_fingerprint(&hw.heap),
            marked_fingerprint(&sw.heap),
            "config {cfg:?}"
        );
    }
}
