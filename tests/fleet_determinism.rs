//! The fleet experiment's determinism wall: tables and the metrics
//! sidecar must be byte-identical across `--jobs`, `--par-engines` and
//! both scheduler pacings, with and without active fault injection —
//! the in-process counterpart of ci.sh's cross-process `cmp` gate.

use tracegc::experiments::{exit_code_for, run_ids, Options};
use tracegc::sim::{with_pacing, FaultConfig, Pacing};

/// Runs the fleet experiment and flattens every byte the CLI would
/// write: all table CSVs plus the metrics sidecar JSON.
fn fleet_bytes(opts: &Options) -> String {
    let done = run_ids(&["fleet"], opts).expect("fleet is registered");
    let out = &done[0].output;
    let mut bytes = String::new();
    for t in &out.tables {
        bytes.push_str(&t.to_csv());
        bytes.push('\n');
    }
    bytes.push_str(&out.metrics.to_json());
    bytes
}

fn smoke_opts(fault: Option<FaultConfig>) -> Options {
    Options {
        scale: 0.015,
        pauses: 1,
        fault,
        ..Options::default()
    }
}

/// Every rate class active, like the CLI's `--fault-rate`.
fn active_fault(rate: f64) -> FaultConfig {
    FaultConfig {
        seed: 0x5EED,
        bit_flip_rate: rate,
        drop_rate: rate,
        delay_rate: rate,
        corrupt_ref_rate: rate,
        corrupt_header_rate: rate,
        pte_fault_rate: rate,
        ..FaultConfig::zero_rates(0x5EED)
    }
}

#[test]
fn fleet_is_byte_identical_across_jobs_par_engines_and_pacing() {
    let reference = with_pacing(Pacing::Lockstep, || {
        fleet_bytes(&Options {
            jobs: 1,
            par_engines: 1,
            ..smoke_opts(None)
        })
    });
    for jobs in [1usize, 4] {
        for par_engines in [1usize, 4] {
            for pacing in [Pacing::Lockstep, Pacing::FastForward] {
                let got = with_pacing(pacing, || {
                    fleet_bytes(&Options {
                        jobs,
                        par_engines,
                        ..smoke_opts(None)
                    })
                });
                assert_eq!(
                    got, reference,
                    "fleet output differs at jobs={jobs} par_engines={par_engines} {pacing:?}"
                );
            }
        }
    }
}

#[test]
fn faulted_fleet_degrades_gracefully_and_stays_deterministic() {
    // A fault rate known to degrade at least one tenant at smoke scale:
    // every degraded tenant's mark is differentially checked against
    // the reachability oracle inside the runner (a mismatch becomes a
    // failed run), so `fallback_runs` without `failed_runs` *is* the
    // graceful-degradation property. The exit-code contract follows.
    let opts = |par_engines| Options {
        par_engines,
        ..smoke_opts(Some(active_fault(1e-3)))
    };
    let done = run_ids(&["fleet"], &opts(1)).expect("fleet is registered");
    let metrics = &done[0].output.metrics;
    assert!(
        metrics.fault_value("fallback_runs").unwrap_or(0) > 0,
        "this rate/seed must degrade at least one tenant"
    );
    assert_eq!(
        metrics.fault_value("failed_runs"),
        None,
        "degraded tenants must still pass the reachability oracle"
    );
    assert_eq!(exit_code_for(&done), 2, "degraded-but-correct exits 2");

    // And the faulted run is just as deterministic as the clean one.
    assert_eq!(fleet_bytes(&opts(1)), fleet_bytes(&opts(4)));
}
