//! Fault injection and graceful degradation, end to end: every injected
//! fault class must turn into a structured trap, the software-fallback
//! mark must complete from the unit's architected state, and the final
//! live set must be *exactly* what a clean mark produces. Zero-rate
//! fault plans must be byte-invisible in every experiment's output.

use tracegc::experiments::{run, Options, ALL};
use tracegc::heap::verify::check_free_lists;
use tracegc::heap::LayoutKind;
use tracegc::hwgc::{GcUnitConfig, TrapKind};
use tracegc::runner::{
    run_faulted_mark, run_unit_gc, run_unit_gc_faulted, FaultedMarkRun, MarkOutcome, MemKind,
};
use tracegc::sim::FaultConfig;
use tracegc::workloads::spec::{by_name, BenchSpec};

fn spec() -> BenchSpec {
    by_name("avrora").expect("avrora exists").scaled(0.02)
}

/// One mark pass under `fault` with the default unit. The mark/
/// reachability differential check runs inside `run_faulted_mark`
/// for every non-failed outcome, whichever path completed the mark.
fn faulted(fault: FaultConfig) -> FaultedMarkRun {
    run_faulted_mark(
        &spec(),
        LayoutKind::Bidirectional,
        GcUnitConfig::default(),
        MemKind::ddr3_default(),
        fault,
    )
}

fn assert_falls_back(run: &FaultedMarkRun, want: &[TrapKind]) -> TrapKind {
    match &run.outcome {
        MarkOutcome::Fallback(fb) => {
            assert!(
                want.contains(&fb.trap.kind),
                "unexpected trap {:?} (wanted one of {want:?})",
                fb.trap.kind
            );
            assert!(run.fallback_cycles > 0, "fallback must cost cycles");
            fb.trap.kind
        }
        other => panic!("expected a fallback, got {other:?}"),
    }
}

/// The clean baseline every fault class is compared against.
fn clean_marked() -> u64 {
    let clean = faulted(FaultConfig::zero_rates(0));
    assert!(matches!(clean.outcome, MarkOutcome::Clean));
    clean.objects_marked
}

#[test]
fn corrupted_references_degrade_to_an_identical_mark() {
    let run = faulted(FaultConfig {
        seed: 21,
        corrupt_ref_rate: 0.02,
        ..FaultConfig::default()
    });
    // A corrupted reference word can look out-of-bounds, misaligned, or
    // land on a non-header; all are sanitizer traps.
    assert_falls_back(
        &run,
        &[
            TrapKind::RefOutOfBounds,
            TrapKind::RefMisaligned,
            TrapKind::HeaderCorrupt,
        ],
    );
    assert!(run.stats.corrupted_refs > 0);
    assert_eq!(run.objects_marked, clean_marked());
}

#[test]
fn corrupted_headers_degrade_to_an_identical_mark() {
    let run = faulted(FaultConfig {
        seed: 5,
        corrupt_header_rate: 0.02,
        ..FaultConfig::default()
    });
    assert_falls_back(&run, &[TrapKind::HeaderCorrupt]);
    assert!(run.stats.corrupted_headers > 0);
    assert_eq!(run.objects_marked, clean_marked());
}

#[test]
fn invalid_ptes_degrade_to_an_identical_mark() {
    // PTE faults only fire on actual page-table walks, and the small
    // test heap keeps the TLB warm — a high rate makes the handful of
    // walks deterministic targets.
    let run = faulted(FaultConfig {
        seed: 9,
        pte_fault_rate: 0.5,
        ..FaultConfig::default()
    });
    assert_falls_back(&run, &[TrapKind::PageFault]);
    assert!(run.stats.pte_faults > 0);
    assert_eq!(run.objects_marked, clean_marked());
}

#[test]
fn dropped_responses_exhaust_retries_and_degrade() {
    let run = faulted(FaultConfig {
        seed: 2,
        drop_rate: 1.0,
        ..FaultConfig::default()
    });
    assert_falls_back(&run, &[TrapKind::MemTimeout]);
    assert!(run.stats.dropped > 0);
    assert!(run.stats.timeouts > 0);
    assert_eq!(run.objects_marked, clean_marked());
}

#[test]
fn uncorrectable_ecc_degrades_to_an_identical_mark() {
    let run = faulted(FaultConfig {
        seed: 3,
        bit_flip_rate: 1.0,
        ecc_detect_weight: 0.0,
        ecc_uncorrectable_weight: 1.0,
        ..FaultConfig::default()
    });
    assert_falls_back(&run, &[TrapKind::EccUncorrectable]);
    assert!(run.stats.ecc_uncorrectable > 0);
    assert_eq!(run.objects_marked, clean_marked());
}

#[test]
fn correctable_ecc_is_absorbed_without_a_trap() {
    // Every access flips a bit but ECC corrects all of them: the run
    // stays clean (slower, never wrong).
    let run = faulted(FaultConfig {
        seed: 4,
        bit_flip_rate: 1.0,
        ecc_detect_weight: 0.0,
        ecc_uncorrectable_weight: 0.0,
        ..FaultConfig::default()
    });
    assert!(matches!(run.outcome, MarkOutcome::Clean));
    assert!(run.stats.ecc_corrected > 0);
    assert_eq!(run.objects_marked, clean_marked());
}

#[test]
fn spill_exhaustion_degrades_to_an_identical_mark() {
    // No injected faults at all: a one-chunk spill region exhausts on
    // its own, which must trap and degrade like any other fault.
    let run = run_faulted_mark(
        &spec(),
        LayoutKind::Bidirectional,
        GcUnitConfig {
            markq_entries: 16,
            markq_side: 16,
            spill_bytes: 64,
            ..GcUnitConfig::default()
        },
        MemKind::ddr3_default(),
        FaultConfig::zero_rates(0),
    );
    assert_falls_back(&run, &[TrapKind::SpillExhausted]);
    assert_eq!(run.objects_marked, clean_marked());
}

#[test]
fn request_timeout_budget_degrades_to_an_identical_mark() {
    // The fleet scheduler's per-request timeout: no injected faults at
    // all, just a mark budget far below the real service time. The unit
    // must latch `RequestTimeout` at its deadline (in both pacings —
    // `next_event_at` reports the deadline as a wake source) and the
    // software fallback must finish the mark identically.
    let timed_out = || {
        run_faulted_mark(
            &spec(),
            LayoutKind::Bidirectional,
            GcUnitConfig {
                mark_budget: 64,
                ..GcUnitConfig::default()
            },
            MemKind::ddr3_default(),
            FaultConfig::zero_rates(0),
        )
    };
    let run = timed_out();
    assert_falls_back(&run, &[TrapKind::RequestTimeout]);
    assert_eq!(run.objects_marked, clean_marked());
    // The deadline is a cycle count, not a race: the trap lands on the
    // same cycle every time.
    match (&run.outcome, &timed_out().outcome) {
        (MarkOutcome::Fallback(a), MarkOutcome::Fallback(b)) => {
            assert_eq!(a.trap.at, b.trap.at, "timeout cycle must be deterministic");
        }
        other => panic!("expected two fallbacks, got {other:?}"),
    }
}

#[test]
fn fallback_completed_collection_sweeps_like_a_clean_one() {
    // The full GC path: trap, software fallback, then the unit's sweep.
    // Heap invariants must hold and the freed set must match a clean
    // collection exactly.
    let run = run_unit_gc_faulted(
        &spec(),
        LayoutKind::Bidirectional,
        GcUnitConfig::default(),
        MemKind::ddr3_default(),
        false,
        Some(FaultConfig {
            seed: 21,
            corrupt_ref_rate: 0.02,
            ..FaultConfig::default()
        }),
    );
    assert!(run.fallback.is_some(), "this seed/rate must trap");
    let clean = run_unit_gc(
        &spec(),
        LayoutKind::Bidirectional,
        GcUnitConfig::default(),
        MemKind::ddr3_default(),
    );
    assert_eq!(run.report.sweep.cells_freed, clean.report.sweep.cells_freed);
    assert_eq!(
        run.report.sweep.live_objects,
        clean.report.sweep.live_objects
    );
    check_free_lists(&run.workload.heap).unwrap();
    assert!(run.workload.heap.marked_set().is_empty());
    // The MMIO completion registers reflect the recovered totals.
    assert_eq!(
        run.unit.regs().read(tracegc::hwgc::mmio::Reg::FreedCount),
        run.report.sweep.cells_freed
    );
}

#[test]
fn zero_rate_plan_is_byte_invisible_in_every_experiment() {
    // The property test of the robustness PR: threading an *inactive*
    // fault config through the whole registry must not change a single
    // output byte — tables, notes, or metrics sidecars.
    let ids: Vec<&str> = ALL
        .iter()
        .copied()
        .filter(|&id| id != "fig18" && id != "ablE") // these force large scales
        .collect();
    let opts = |fault| Options {
        scale: 0.015,
        pauses: 1,
        fault,
        ..Options::default()
    };
    let none = opts(None);
    let zero = opts(Some(FaultConfig::zero_rates(42)));
    for id in ids {
        let a = run(id, &none).expect("known id");
        let b = run(id, &zero).expect("known id");
        assert_eq!(a.notes, b.notes, "{id} notes differ under a zero-rate plan");
        assert_eq!(a.tables.len(), b.tables.len());
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta.to_csv(), tb.to_csv(), "{id} CSV differs");
        }
        assert_eq!(
            a.metrics.to_json(),
            b.metrics.to_json(),
            "{id} sidecar differs under a zero-rate plan"
        );
    }
}
