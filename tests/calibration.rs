//! The calibration harness itself is under test: the shrunken-config
//! smoke run over the committed golden artifacts must pass, the report
//! must be byte-deterministic, order-independent in its verdicts, and
//! the CLI exit-code contract must hold.
//!
//! `tests/golden/` doubles as the input corpus here: it holds every
//! figure's CSVs and sidecars at smoke scale (0.015), so the
//! scale-robust trend checks are exercised in every `cargo test -q`
//! while the absolute bands correctly report `skipped` (they are
//! calibrated at scale 0.25 — the committed `results/`, which ci.sh
//! gates on with the same binary).

use std::path::{Path, PathBuf};

use tracegc::calib::{self, Status, CALIBRATED_SCALE, FIGURES};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// A scratch copy of the calibration inputs, so tests that write
/// `calibration.json` never dirty `tests/golden/` (the golden manifest
/// test treats unlisted files as failures).
fn scratch_copy(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tracegc-calib-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(golden_dir()).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    dir
}

/// The smoke gate: every scale-robust trend assertion holds on the
/// golden corpus, every absolute band is skipped (not failed) because
/// the corpus is not at the calibrated scale, and nothing fails.
#[test]
fn calibration_smoke_passes_on_golden_corpus() {
    let report = calib::evaluate_all(&golden_dir()).expect("known figures");
    let failed: Vec<_> = report
        .checks
        .iter()
        .filter(|c| c.status == Status::Fail)
        .collect();
    assert!(failed.is_empty(), "failed checks: {failed:#?}");
    assert!(report.passed());
    let (passed, _, skipped) = report.tally();
    assert!(
        passed >= 10,
        "suspiciously few passing trend checks ({passed}); are the goldens present?"
    );
    // The corpus is at smoke scale, so at least the pure band checks
    // must be skipped rather than silently evaluated off-calibration.
    assert!(
        skipped >= 5,
        "band checks should skip at smoke scale, got {skipped} skips"
    );
    for c in &report.checks {
        if c.status == Status::Skipped {
            let reason = c.reason.as_deref().unwrap_or("");
            assert!(
                reason.contains(&CALIBRATED_SCALE.to_string())
                    || reason.contains("no spill traffic"),
                "{}: unexpected skip reason '{reason}'",
                c.id
            );
        }
    }
}

/// Verdicts are order-independent: whatever order (or duplication) the
/// figures are requested in, the report lists its checks in canonical
/// order and renders byte-identical JSON.
#[test]
fn report_is_order_independent() {
    let dir = golden_dir();
    let canonical = calib::evaluate(&dir, FIGURES).unwrap().to_json();
    let mut figs: Vec<&str> = FIGURES.to_vec();
    // Deterministic shuffles: reversal plus every rotation, and a
    // duplicated-id request. Between them every pairwise order
    // inversion is exercised.
    figs.reverse();
    assert_eq!(calib::evaluate(&dir, &figs).unwrap().to_json(), canonical);
    for rot in 1..FIGURES.len() {
        let mut rotated: Vec<&str> = FIGURES.to_vec();
        rotated.rotate_left(rot);
        assert_eq!(
            calib::evaluate(&dir, &rotated).unwrap().to_json(),
            canonical,
            "rotation {rot} changed the report bytes"
        );
    }
    let duplicated: Vec<&str> = FIGURES
        .iter()
        .chain(FIGURES.iter().rev())
        .copied()
        .collect();
    assert_eq!(
        calib::evaluate(&dir, &duplicated).unwrap().to_json(),
        canonical
    );
    // A subset request still reports in canonical order.
    let subset = calib::evaluate(&dir, &["fig20", "table1", "fig15"]).unwrap();
    assert_eq!(subset.figures, vec!["table1", "fig15", "fig20"]);
}

/// Two evaluations of the same inputs write byte-identical
/// `calibration.json`, and the written file round-trips the in-memory
/// rendering exactly.
#[test]
fn calibration_json_is_deterministic() {
    let dir = scratch_copy("det");
    let a = calib::evaluate_all(&dir).unwrap();
    let path = calib::write_calibration(&dir, &a).unwrap();
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert_eq!(on_disk, a.to_json());
    let b = calib::evaluate_all(&dir).unwrap();
    assert_eq!(a.to_json(), b.to_json());
    // The report is strict JSON by its own parser's standards.
    tracegc::json::parse(&on_disk).expect("calibration.json must be strict JSON");
    assert!(on_disk.contains("\"schema\": \"tracegc-calib-v1\""));
    std::fs::remove_dir_all(&dir).ok();
}

/// Unknown figures are rejected up front, before any evaluation.
#[test]
fn unknown_figures_are_rejected() {
    let err = calib::evaluate(&golden_dir(), &["fig15", "fig99"]).unwrap_err();
    assert!(err.contains("fig99"), "unhelpful error: {err}");
}

/// An empty input directory fails every check — missing inputs are
/// violations, never silent passes.
#[test]
fn missing_inputs_fail() {
    let dir = std::env::temp_dir().join(format!("tracegc-calib-empty-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let report = calib::evaluate_all(&dir).unwrap();
    assert!(!report.passed());
    let (passed, failed, _) = report.tally();
    assert_eq!(passed, 0);
    assert!(failed > 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The CLI contract end to end: `experiments --calibrate` exits 0 on a
/// conforming corpus (writing the report), 4 on violations, 1 on usage
/// errors; and the written report is byte-identical across invocations.
#[test]
fn cli_exit_code_contract() {
    let exe = env!("CARGO_BIN_EXE_experiments");
    let run = |dir: &Path, extra: &[&str]| {
        std::process::Command::new(exe)
            .arg("--calibrate")
            .arg("--out")
            .arg(dir)
            .args(extra)
            .output()
            .expect("spawn experiments")
    };

    // Conforming corpus: exit 0, report written.
    let good = scratch_copy("cli");
    let out = run(&good, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let first = std::fs::read_to_string(good.join("calibration.json")).unwrap();
    let out = run(&good, &[]);
    assert_eq!(out.status.code(), Some(0));
    let second = std::fs::read_to_string(good.join("calibration.json")).unwrap();
    assert_eq!(first, second, "calibration.json differs across invocations");

    // Violations (empty corpus): exit 4, and the report still lands so
    // CI artifacts show what failed.
    let empty = std::env::temp_dir().join(format!("tracegc-calib-cli4-{}", std::process::id()));
    std::fs::remove_dir_all(&empty).ok();
    std::fs::create_dir_all(&empty).unwrap();
    let out = run(&empty, &[]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(empty.join("calibration.json").is_file());

    // Usage error: unknown figure, exit 1, no report.
    let out = run(&empty, &["fig99"]);
    assert_eq!(out.status.code(), Some(1));

    std::fs::remove_dir_all(&good).ok();
    std::fs::remove_dir_all(&empty).ok();
}
