//! Every experiment's metrics sidecar is well-formed, satisfies the
//! stall-attribution invariant (busy + stalls == cycles x lanes for
//! every phase), and is byte-identical across `--jobs` values.

use tracegc::experiments::{run, run_ids, Options, ALL};
use tracegc::metrics::{json_syntax_check, write_sidecar, SCHEMA};

fn smoke_opts() -> Options {
    Options {
        scale: 0.015,
        pauses: 1,
        ..Options::default()
    }
}

/// The registry minus fig18/ablE, which force large workload scales
/// (they get the same checks from the ignored test below).
fn smoke_ids() -> Vec<&'static str> {
    ALL.iter()
        .copied()
        .filter(|&id| id != "fig18" && id != "ablE")
        .collect()
}

#[test]
fn every_sidecar_is_valid_and_attributed() {
    for id in smoke_ids() {
        let out = run(id, &smoke_opts()).unwrap_or_else(|| panic!("unknown id {id}"));
        let doc = &out.metrics;
        assert_eq!(doc.id, id, "metrics doc id mismatch");
        doc.check_invariants()
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        let json = doc.to_json();
        json_syntax_check(&json).unwrap_or_else(|e| panic!("{id}: malformed JSON: {e}"));
        assert!(json.contains(SCHEMA), "{id}: missing schema tag");
        // Every simulated experiment carries at least one attributed
        // phase — including the scheduler-composed runs (conc, multi,
        // overlap, multiunit), whose ledgers the scheduler charges
        // cycle-for-cycle; only the model/config-only experiments
        // (table1/fig22/ablD/ablH) are gauge/counter-only by design.
        if !matches!(id, "table1" | "fig22" | "ablD" | "ablH") {
            assert!(!doc.phases.is_empty(), "{id}: no phases recorded");
            let stalled: u64 = doc.phases.iter().map(|p| p.stalls.total_stalled()).sum();
            assert!(stalled > 0, "{id}: no stall cycles attributed anywhere");
        }
    }
}

/// Crossed determinism property (reusing `tracegc::nondet`'s premise
/// that sidecars carry no host-measured fields): every registry
/// experiment's CSVs and metrics sidecar are byte-identical for every
/// `--par-engines` ∈ {1, 2, 4, 8} × `--jobs` ∈ {1, 4} — the two levels
/// of parallelism compose without perturbing a single output byte.
#[test]
fn sidecars_and_csvs_are_identical_across_jobs_and_par_engines() {
    let ids = smoke_ids();
    let opts = |jobs, par_engines| Options {
        jobs,
        par_engines,
        ..smoke_opts()
    };
    let baseline = run_ids(&ids, &opts(1, 1)).expect("valid ids");
    for jobs in [1usize, 4] {
        for par_engines in [1usize, 2, 4, 8] {
            if (jobs, par_engines) == (1, 1) {
                continue;
            }
            let run = run_ids(&ids, &opts(jobs, par_engines)).expect("valid ids");
            for (b, r) in baseline.iter().zip(&run) {
                assert_eq!(b.output.metrics.id, r.output.metrics.id);
                assert_eq!(
                    b.output.metrics.to_json(),
                    r.output.metrics.to_json(),
                    "{} sidecar differs at --jobs {jobs} --par-engines {par_engines}",
                    b.output.id
                );
                let csv = |c: &tracegc::experiments::CompletedExperiment| {
                    c.output
                        .tables
                        .iter()
                        .map(tracegc::table::Table::to_csv)
                        .collect::<Vec<_>>()
                };
                assert_eq!(
                    csv(b),
                    csv(r),
                    "{} CSV differs at --jobs {jobs} --par-engines {par_engines}",
                    b.output.id
                );
            }
        }
    }
}

#[test]
fn sidecar_file_round_trips() {
    let dir = std::env::temp_dir().join(format!("tracegc-metrics-{}", std::process::id()));
    let out = run("table1", &smoke_opts()).expect("table1 known");
    let path = write_sidecar(&dir, &out.metrics).expect("sidecar written");
    assert!(path.ends_with("table1.metrics.json"));
    let contents = std::fs::read_to_string(&path).expect("readable");
    assert_eq!(contents, out.metrics.to_json());
    json_syntax_check(&contents).expect("well-formed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[ignore = "fig18/ablE run at full workload scale; expensive (~1 min release, minutes debug)"]
fn forced_scale_sidecars_are_valid() {
    for id in ["fig18", "ablE"] {
        let out = run(id, &smoke_opts()).expect("known id");
        out.metrics
            .check_invariants()
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        json_syntax_check(&out.metrics.to_json()).unwrap();
    }
}

/// The `experiments --bench` document (`BENCH_<issue>.json`): schema
/// tag, JSON well-formedness, deterministic bytes, totals and the
/// derived speedup fields.
#[test]
fn bench_doc_schema_and_totals() {
    use tracegc::metrics::{write_bench, BENCH_SCHEMA};
    let doc = sample_bench_doc();
    assert_eq!(doc.file_name(), "BENCH_10.json");
    assert_eq!(doc.total_sim_cycles(), 3_000_000);
    assert!((doc.total_speedup() - 6.0).abs() < 1e-9);
    assert!((doc.total_speedup_parallel() - 3.0).abs() < 1e-9);
    let json = doc.to_json();
    json_syntax_check(&json).expect("bench doc must be well-formed JSON");
    assert!(json.contains(BENCH_SCHEMA), "missing schema tag");
    for key in [
        "\"issue\": 10",
        "\"par_engines\": 4",
        "\"host_cpus\": 8",
        "\"experiments\": [",
        "\"wall_s_fastforward\"",
        "\"wall_s_lockstep\"",
        "\"wall_s_parallel\"",
        "\"speedup\"",
        "\"speedup_parallel\"",
        "\"cycles_per_sec_fastforward\"",
        "\"cycles_per_sec_parallel\"",
        "\"peak_rss_kb_fastforward\": 120000",
        "\"peak_rss_kb_lockstep\": 118000",
        "\"peak_rss_kb_parallel\": 121000",
        "\"total\"",
    ] {
        assert!(json.contains(key), "bench doc missing {key}:\n{json}");
    }
    assert_eq!(json, doc.to_json(), "bench rendering must be deterministic");

    let dir = std::env::temp_dir().join(format!("tracegc-bench-{}", std::process::id()));
    let path = write_bench(&dir, &doc).expect("bench written");
    assert!(path.ends_with("BENCH_10.json"));
    assert_eq!(
        std::fs::read_to_string(&path).expect("readable"),
        doc.to_json()
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn sample_bench_doc() -> tracegc::metrics::BenchDoc {
    use tracegc::metrics::{BenchDoc, BenchEntry};
    BenchDoc {
        issue: 10,
        jobs: 4,
        par_engines: 4,
        scale: 0.25,
        pauses: 3,
        host_cpus: Some(8),
        peak_rss_kb_fastforward: Some(120_000),
        peak_rss_kb_lockstep: Some(118_000),
        peak_rss_kb_parallel: Some(121_000),
        entries: vec![
            BenchEntry {
                id: "fig15".into(),
                sim_cycles: 1_000_000,
                wall_s_fastforward: 0.5,
                wall_s_lockstep: 4.0,
                wall_s_parallel: 0.25,
            },
            BenchEntry {
                id: "fig20".into(),
                sim_cycles: 2_000_000,
                wall_s_fastforward: 1.0,
                wall_s_lockstep: 5.0,
                wall_s_parallel: 0.25,
            },
        ],
    }
}

/// The nondeterministic-field exclusion list (`tracegc::nondet`) is
/// *exact*: every listed field actually occurs in a bench document
/// (nothing on the list is dead), scrubbing removes them all, and the
/// deterministic artifacts — metrics sidecars — contain none of them,
/// so scrubbing those is byte-identity. This is what lets `--bench`'s
/// byte-equality gate and these tests share one source of truth
/// without silently weakening either.
#[test]
fn nondet_exclusion_list_is_exact() {
    use tracegc::json::{self, Json};
    use tracegc::nondet::{is_nondet_field, scrub_json, NONDET_FIELDS};

    fn field_names(v: &Json, out: &mut Vec<String>) {
        match v {
            Json::Obj(members) => {
                for (k, val) in members {
                    out.push(k.clone());
                    field_names(val, out);
                }
            }
            Json::Arr(elems) => elems.iter().for_each(|e| field_names(e, out)),
            _ => {}
        }
    }

    // Every listed field occurs in the bench doc.
    let bench = sample_bench_doc().to_json();
    let mut bench_fields = Vec::new();
    field_names(&json::parse(&bench).unwrap(), &mut bench_fields);
    for f in NONDET_FIELDS {
        assert!(
            bench_fields.iter().any(|b| b == f),
            "exclusion-listed field '{f}' never occurs in a bench doc — stale list"
        );
    }

    // Scrubbing removes exactly the listed fields, nothing else.
    let scrubbed = scrub_json(&bench).unwrap();
    let mut kept = Vec::new();
    field_names(&json::parse(&scrubbed).unwrap(), &mut kept);
    assert!(kept.iter().all(|k| !is_nondet_field(k)));
    let expected: Vec<String> = bench_fields
        .iter()
        .filter(|f| !is_nondet_field(f))
        .cloned()
        .collect();
    assert_eq!(kept, expected, "scrub removed a field not on the list");

    // Deterministic artifacts carry no excluded fields: scrub is a
    // value-level identity on every smoke sidecar.
    for id in smoke_ids() {
        let out = run(id, &smoke_opts()).unwrap();
        let sidecar = out.metrics.to_json();
        let mut fields = Vec::new();
        field_names(&json::parse(&sidecar).unwrap(), &mut fields);
        for f in &fields {
            assert!(
                !is_nondet_field(f),
                "{id}: deterministic sidecar contains excluded field '{f}'"
            );
        }
        assert_eq!(
            scrub_json(&sidecar).unwrap(),
            json::parse(&sidecar).unwrap().to_compact(),
            "{id}: scrub must be identity on a deterministic sidecar"
        );
    }
}
