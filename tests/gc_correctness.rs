//! Cross-crate differential correctness: for every benchmark and both
//! object layouts, the software collector, the GC unit and the
//! reachability oracle must agree exactly — the central invariant of
//! DESIGN.md §5.

use tracegc::cpu::{Cpu, CpuConfig};
use tracegc::heap::verify::{check_free_lists, check_marks_match_reachability, software_sweep};
use tracegc::heap::{Heap, LayoutKind};
use tracegc::hwgc::{GcUnit, GcUnitConfig, TraversalUnit};
use tracegc::mem::MemSystem;
use tracegc::workloads::generate::generate_heap;
use tracegc::workloads::spec::DACAPO;

/// The invariant pass every completed collection must satisfy: free
/// lists are well-formed and the sweep cleared every mark bit.
fn post_gc_invariants(heap: &Heap) {
    check_free_lists(heap).unwrap();
    assert!(
        heap.marked_set().is_empty(),
        "sweep must clear every mark bit"
    );
}

#[test]
fn unit_marks_equal_oracle_on_every_benchmark() {
    for spec in DACAPO {
        let spec = spec.scaled(0.02);
        let mut w = generate_heap(&spec, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut w.heap);
        let result = unit.run_mark(&mut w.heap, &mut mem, 0);
        check_marks_match_reachability(&w.heap).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(
            result.objects_marked as usize, w.live_objects,
            "{}",
            spec.name
        );
    }
}

#[test]
fn unit_marks_equal_oracle_conventional_layout() {
    for spec in DACAPO.iter().take(2) {
        let spec = spec.scaled(0.02);
        let mut w = generate_heap(&spec, LayoutKind::Conventional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut w.heap);
        unit.run_mark(&mut w.heap, &mut mem, 0);
        check_marks_match_reachability(&w.heap).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

#[test]
fn cpu_and_unit_produce_identical_sweeps() {
    for spec in DACAPO.iter().take(3) {
        let spec = spec.scaled(0.02);

        // CPU pipeline on copy A.
        let mut a = generate_heap(&spec, LayoutKind::Bidirectional);
        let mut mem_a = MemSystem::ddr3(Default::default());
        let mut cpu = Cpu::new(CpuConfig::default(), &mut a.heap);
        let (mark_a, sweep_a) = cpu.run_gc(&mut a.heap, &mut mem_a);

        // Unit pipeline on copy B.
        let mut b = generate_heap(&spec, LayoutKind::Bidirectional);
        let mut mem_b = MemSystem::ddr3(Default::default());
        let mut unit = GcUnit::new(GcUnitConfig::default(), &mut b.heap);
        let report = unit.run_gc(&mut b.heap, &mut mem_b);

        assert_eq!(
            mark_a.work_items, report.mark.objects_marked,
            "{}",
            spec.name
        );
        assert_eq!(
            sweep_a.work_items, report.sweep.cells_freed,
            "{}",
            spec.name
        );
        post_gc_invariants(&a.heap);
        post_gc_invariants(&b.heap);
        // Block-level metadata must agree exactly.
        for (ba, bb) in a.heap.blocks().iter().zip(b.heap.blocks()) {
            assert_eq!(ba.free_cells, bb.free_cells, "{}", spec.name);
            assert_eq!(ba.free_head, bb.free_head, "{}", spec.name);
        }
    }
}

#[test]
fn unit_sweep_equals_software_sweep_oracle() {
    let spec = DACAPO[0].scaled(0.03);

    let mut oracle = generate_heap(&spec, LayoutKind::Bidirectional);
    tracegc::heap::verify::software_mark(&mut oracle.heap);
    let expected = software_sweep(&mut oracle.heap);

    let mut w = generate_heap(&spec, LayoutKind::Bidirectional);
    let mut mem = MemSystem::ddr3(Default::default());
    let mut unit = GcUnit::new(GcUnitConfig::default(), &mut w.heap);
    let report = unit.run_gc(&mut w.heap, &mut mem);

    assert_eq!(report.sweep.cells_freed, expected.freed_cells);
    assert_eq!(report.sweep.live_objects, expected.live_objects);
}

#[test]
fn aggressive_unit_configs_stay_correct() {
    // Stress the spill/throttle/backpressure machinery with degenerate
    // configurations.
    let spec = DACAPO[2].scaled(0.02);
    let configs = [
        GcUnitConfig {
            markq_entries: 16,
            markq_side: 16,
            ..GcUnitConfig::default()
        },
        GcUnitConfig {
            markq_entries: 16,
            markq_side: 16,
            compress: true,
            tracer_queue: 2,
            ..GcUnitConfig::default()
        },
        GcUnitConfig {
            marker_slots: 1,
            ..GcUnitConfig::default()
        },
        GcUnitConfig {
            markbit_cache: 256,
            sweepers: 8,
            ..GcUnitConfig::default()
        },
    ];
    for (i, cfg) in configs.into_iter().enumerate() {
        let mut w = generate_heap(&spec, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(cfg, &mut w.heap);
        unit.run_mark(&mut w.heap, &mut mem, 0);
        check_marks_match_reachability(&w.heap).unwrap_or_else(|e| panic!("config {i}: {e}"));
    }
}

#[test]
fn fallback_completed_collections_satisfy_post_gc_invariants() {
    // One collection per injected fault class: each traps, degrades to
    // the software-fallback mark, sweeps, and must leave the heap in
    // the same verified state as a clean collection.
    use tracegc::runner::{run_unit_gc_faulted, MemKind};
    use tracegc::sim::FaultConfig;

    let spec = DACAPO[0].scaled(0.02);
    let classes: [(&str, FaultConfig); 4] = [
        (
            "corrupt-ref",
            FaultConfig {
                seed: 21,
                corrupt_ref_rate: 0.02,
                ..FaultConfig::default()
            },
        ),
        (
            "corrupt-header",
            FaultConfig {
                seed: 5,
                corrupt_header_rate: 0.02,
                ..FaultConfig::default()
            },
        ),
        (
            // PTE faults only fire on actual page-table walks, and the
            // small test heap keeps the TLB warm — a high per-walk rate
            // makes the handful of walks deterministic targets.
            "pte-fault",
            FaultConfig {
                seed: 9,
                pte_fault_rate: 0.5,
                ..FaultConfig::default()
            },
        ),
        (
            "mem-timeout",
            FaultConfig {
                seed: 2,
                drop_rate: 1.0,
                ..FaultConfig::default()
            },
        ),
    ];
    for (name, fault) in classes {
        let run = run_unit_gc_faulted(
            &spec,
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
            MemKind::ddr3_default(),
            false,
            Some(fault),
        );
        assert!(run.fallback.is_some(), "{name}: expected a fallback");
        post_gc_invariants(&run.workload.heap);
    }
}

#[test]
fn multi_gc_cycles_with_allocation_reuse() {
    let spec = DACAPO[1].scaled(0.02);
    let mut w = generate_heap(&spec, LayoutKind::Bidirectional);
    let blocks_after_first: usize;
    {
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = GcUnit::new(GcUnitConfig::default(), &mut w.heap);
        unit.run_gc(&mut w.heap, &mut mem);
        blocks_after_first = w.heap.blocks().len();
    }
    for _ in 0..3 {
        tracegc::workloads::generate::churn(&mut w, 0.2);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = GcUnit::new(GcUnitConfig::default(), &mut w.heap);
        unit.run_gc(&mut w.heap, &mut mem);
        post_gc_invariants(&w.heap);
    }
    // Churn + sweep reuse should not balloon the block count much.
    assert!(
        w.heap.blocks().len() <= blocks_after_first + 4,
        "blocks grew from {blocks_after_first} to {}",
        w.heap.blocks().len()
    );
}
