//! Property checks for the `Engine::next_event_at` contract that
//! `Pacing::FastForward` leans on (see the trait docs in `sim::sched`).
//!
//! Every implementor is driven under a *lockstep* reference loop — one
//! step per cycle, exactly what fast-forward elides — and checked at
//! each step:
//!
//! * **Never stale.** A step that returns `Stalled` at cycle `c` must
//!   leave `next_event_at() > c` (or `None`).
//! * **Never early.** Having stalled at `c` promising an event at `t`,
//!   the engine must not return `Advanced` at any cycle strictly
//!   before `t` (no external input changes in a single-engine drive).
//! * **Not stalled at the event.** Stepped at the promised cycle, the
//!   engine must make progress, finish, or promise a strictly later
//!   event — promises must converge on real state changes, or the
//!   fast-forward scheduler would degrade into a crawl (and a lying
//!   promise chain would trip its watchdog clamp).
//! * **Span-stable stall reasons.** While the promise is outstanding,
//!   `stall_reason(now)` must not change: fast-forward charges the
//!   whole skipped span in one call with the reason sampled at the
//!   start of the stall, and the ledgers must still match lockstep's
//!   per-cycle charges.
//!
//! Configurations are randomized from fixed seeds so the wall covers
//! queue-pressure, throttled, compressed and multi-walker corners, not
//! just the defaults.

use tracegc::cpu::{Cpu, CpuConfig, CpuMarkEngine, CpuSweepEngine};
use tracegc::heap::{Heap, HeapConfig, LayoutKind, ObjRef, SocCtx};
use tracegc::hwgc::{
    CacheTopology, GcUnitConfig, MarkEngine, MutatorConfig, MutatorEngine, ReclamationUnit,
    SweepEngine, TraversalUnit,
};
use tracegc::mem::MemSystem;
use tracegc::sim::{Engine, Progress, Rng, StallReason, StdRng};

/// Outstanding promise from the most recent stall: where the engine
/// stalled, the event it promised, and the reason it gave.
struct Promise {
    stalled_at: u64,
    event: u64,
    reason: StallReason,
}

/// Drives `engine` one cycle at a time from `start`, checking the
/// contract at every step. Returns the completion cycle.
///
/// `background` engines (the mutator) report `Stalled` even when they
/// do work, so only the never-stale clause applies to them; they are
/// driven for `limit` cycles instead of to completion.
fn drive_checked<'c>(
    name: &str,
    engine: &mut dyn Engine<SocCtx<'c>>,
    ctx: &mut SocCtx<'c>,
    start: u64,
    limit: u64,
    background: bool,
) -> u64 {
    let mut now = start;
    let mut promise: Option<Promise> = None;
    loop {
        match engine.step(now, ctx) {
            Progress::Done => return now,
            Progress::Advanced => {
                if let Some(p) = &promise {
                    assert!(
                        now >= p.event,
                        "{name}: advanced at {now}, strictly before the event {} \
                         promised when stalled at {} — a fast-forward hop would \
                         have skipped real work",
                        p.event,
                        p.stalled_at
                    );
                }
                promise = None;
            }
            Progress::Stalled => {
                let event = engine.next_event_at();
                let reason = engine.stall_reason(now);
                if let Some(t) = event {
                    assert!(
                        t > now,
                        "{name}: stalled at {now} but reported a stale event {t} \
                         — must be strictly future or None"
                    );
                }
                if background {
                    // The mutator paces the clock but always reports
                    // Stalled; the remaining clauses don't apply.
                } else if let Some(p) = &promise {
                    if now < p.event {
                        assert_eq!(
                            reason, p.reason,
                            "{name}: stall reason changed mid-span at {now} \
                             (stalled at {} promising {}) — fast-forward's \
                             one-shot span charge would diverge from \
                             lockstep's per-cycle charges",
                            p.stalled_at, p.event
                        );
                    } else {
                        // Stepped at (or past) the promised event and
                        // still stalled: only legal if the promise
                        // moved strictly forward.
                        let t = event.unwrap_or(u64::MAX);
                        assert!(
                            t > p.event,
                            "{name}: still stalled at {now}, at/after the \
                             promised event {} (stalled at {}), without \
                             promising a strictly later one",
                            p.event,
                            p.stalled_at
                        );
                        promise = Some(Promise {
                            stalled_at: now,
                            event: t,
                            reason,
                        });
                    }
                } else if let Some(t) = event {
                    promise = Some(Promise {
                        stalled_at: now,
                        event: t,
                        reason,
                    });
                }
            }
        }
        now += 1;
        if background && now >= start + limit {
            return now;
        }
        assert!(
            now < start + limit,
            "{name}: no completion within {limit} cycles"
        );
    }
}

/// A randomized unit configuration: every fast-forward-relevant knob
/// (queue pressure, compression, throttling, TLB walkers, topology)
/// drawn from a fixed seed.
fn random_cfg(rng: &mut StdRng) -> GcUnitConfig {
    let mut cfg = GcUnitConfig {
        marker_slots: [1, 2, 4, 8][rng.random_range(0..4usize)],
        tracer_queue: [2, 4, 16][rng.random_range(0..3usize)],
        markq_entries: [8, 16, 64][rng.random_range(0..3usize)],
        markq_side: [16, 32, 64][rng.random_range(0..3usize)],
        compress: rng.random(),
        markbit_cache: [0, 64][rng.random_range(0..2usize)],
        sweepers: [1, 2, 4, 8][rng.random_range(0..4usize)],
        min_issue_interval: [0, 0, 2, 5][rng.random_range(0..4usize)],
        topology: if rng.random() {
            CacheTopology::Shared
        } else {
            CacheTopology::Partitioned
        },
        ..GcUnitConfig::default()
    };
    cfg.tlb.concurrent_walks = [1, 2, 4][rng.random_range(0..3usize)];
    cfg.tlb.blocking_requesters = rng.random();
    cfg
}

/// A small tree-with-cross-edges heap, sized and shaped by the seed.
fn random_mark_heap(rng: &mut StdRng, layout: LayoutKind) -> Heap {
    let n = rng.random_range(200..700usize);
    let mut h = Heap::new(HeapConfig {
        phys_bytes: 128 << 20,
        layout,
        ..HeapConfig::default()
    });
    let objs: Vec<ObjRef> = (0..n)
        .map(|i| h.alloc(3, (i % 6) as u32, false).unwrap())
        .collect();
    let live = n * 3 / 5;
    for i in 0..live {
        if 2 * i + 1 < live {
            h.set_ref(objs[i], 0, Some(objs[2 * i + 1]));
        }
        if 2 * i + 2 < live {
            h.set_ref(objs[i], 1, Some(objs[2 * i + 2]));
        }
        h.set_ref(objs[i], 2, Some(objs[rng.random_range(0..live)]));
    }
    h.set_roots(&[objs[0]]);
    h
}

/// A half-live, already-marked heap for the sweeping engines.
fn random_swept_heap(rng: &mut StdRng) -> Heap {
    let n = rng.random_range(300..900usize);
    let mut h = Heap::new(HeapConfig {
        phys_bytes: 128 << 20,
        ..HeapConfig::default()
    });
    let objs: Vec<ObjRef> = (0..n)
        .map(|i| h.alloc((i % 3) as u32, (i % 8) as u32, false).unwrap())
        .collect();
    let live = n / 2;
    for i in 0..live.saturating_sub(1) {
        if h.nrefs(objs[i]) > 0 {
            h.set_ref(objs[i], 0, Some(objs[i + 1]));
        }
    }
    h.set_roots(&objs[..live]);
    tracegc::heap::verify::software_mark(&mut h);
    h
}

const LIMIT: u64 = 5_000_000;

#[test]
fn mark_engine_honors_the_event_contract() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = if rng.random() {
            LayoutKind::Bidirectional
        } else {
            LayoutKind::Conventional
        };
        let cfg = random_cfg(&mut rng);
        let mut heap = random_mark_heap(&mut rng, layout);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(cfg, &mut heap);
        unit.begin(&heap, 0);
        let mut engine = MarkEngine::new(&mut unit, 0);
        let mut ctx = SocCtx::single(&mut mem, &mut heap);
        drive_checked(
            &format!("traversal[seed={seed}]"),
            &mut engine,
            &mut ctx,
            0,
            LIMIT,
            false,
        );
    }
}

#[test]
fn sweep_engine_honors_the_event_contract() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let cfg = random_cfg(&mut rng);
        let mut heap = random_swept_heap(&mut rng);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = ReclamationUnit::new(cfg, &heap);
        let mut engine = SweepEngine::new(&mut unit, 0, 0);
        let mut ctx = SocCtx::single(&mut mem, &mut heap);
        drive_checked(
            &format!("reclaim[seed={seed}]"),
            &mut engine,
            &mut ctx,
            0,
            LIMIT,
            false,
        );
    }
}

#[test]
fn cpu_engines_honor_the_event_contract() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let layout = if rng.random() {
            LayoutKind::Bidirectional
        } else {
            LayoutKind::Conventional
        };
        let mut heap = random_mark_heap(&mut rng, layout);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
        {
            let mut engine = CpuMarkEngine::new(&mut cpu, 0);
            let mut ctx = SocCtx::single(&mut mem, &mut heap);
            drive_checked(
                &format!("cpu-mark[seed={seed}]"),
                &mut engine,
                &mut ctx,
                0,
                LIMIT,
                false,
            );
        }
        let start = cpu.now();
        let mut engine = CpuSweepEngine::new(&mut cpu, 0);
        let mut ctx = SocCtx::single(&mut mem, &mut heap);
        drive_checked(
            &format!("cpu-sweep[seed={seed}]"),
            &mut engine,
            &mut ctx,
            start,
            LIMIT,
            false,
        );
    }
}

#[test]
fn mutator_engine_honors_the_event_contract() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let mut heap = random_mark_heap(&mut rng, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let working_set: Vec<ObjRef> = heap.roots().to_vec();
        let cfg = MutatorConfig {
            seed,
            cycles_per_op: rng.random_range(1..40u64),
            ..MutatorConfig::default()
        };
        let mut engine = MutatorEngine::new(cfg, 0, working_set, 0);
        let mut ctx = SocCtx::single(&mut mem, &mut heap);
        drive_checked(
            &format!("mutator[seed={seed}]"),
            &mut engine,
            &mut ctx,
            0,
            20_000,
            true,
        );
        // An empty working set must still pace the clock honestly.
        let mut idle = MutatorEngine::new(
            MutatorConfig {
                seed,
                ..MutatorConfig::default()
            },
            0,
            Vec::new(),
            0,
        );
        drive_checked(
            &format!("mutator-idle[seed={seed}]"),
            &mut idle,
            &mut ctx,
            0,
            2_000,
            true,
        );
    }
}
