//! Refactor-equivalence wall for the `Engine`/`Scheduler` layer.
//!
//! The `run_mark` / `run_sweep` / `run_gc` / `run_multiprocess_mark`
//! entry points are thin drivers over `Engine::step` + `Scheduler`.
//! This file proves the refactor preserved behavior cycle-for-cycle:
//! every fingerprint below (end cycle, work counts, and the complete
//! per-reason stall ledger) was captured from the pre-refactor
//! run-to-completion loops on `main` and must match byte for byte.
//!
//! To regenerate after an *intentional* timing-model change, run
//!
//! ```text
//! cargo test -p tracegc --test engine_equivalence -- --nocapture print_
//! ```
//!
//! and paste the printed fingerprints over the constants.

use tracegc::heap::{Heap, HeapConfig, LayoutKind, ObjRef};
use tracegc::hwgc::multiproc::{run_multiprocess_mark, ProcessContext};
use tracegc::hwgc::{
    run_concurrent_mark, GcUnit, GcUnitConfig, MutatorConfig, ReclamationUnit, TraversalUnit,
};
use tracegc::mem::MemSystem;
use tracegc::sim::{StallAccounting, StallReason};

/// Renders a ledger as a stable, diffable string.
fn ledger(s: &StallAccounting) -> String {
    let mut out = format!("busy={}", s.busy_cycles());
    for r in StallReason::ALL {
        out.push_str(&format!(";{}={}", r.name(), s.stalled(r)));
    }
    out
}

/// A binary tree with cross edges (the traversal unit's test workload).
fn mark_heap(n: usize, layout: LayoutKind) -> Heap {
    let mut h = Heap::new(HeapConfig {
        phys_bytes: 256 << 20,
        layout,
        ..HeapConfig::default()
    });
    let objs: Vec<ObjRef> = (0..n)
        .map(|i| h.alloc(3, (i % 6) as u32, false).unwrap())
        .collect();
    let live = n * 3 / 5;
    for i in 0..live {
        if 2 * i + 1 < live {
            h.set_ref(objs[i], 0, Some(objs[2 * i + 1]));
        }
        if 2 * i + 2 < live {
            h.set_ref(objs[i], 1, Some(objs[2 * i + 2]));
        }
        h.set_ref(objs[i], 2, Some(objs[(i * 31 + 7) % live]));
    }
    for i in live..n - 1 {
        h.set_ref(objs[i], 0, Some(objs[i + 1]));
    }
    h.set_roots(&[objs[0]]);
    h
}

/// A half-live heap with marks already set (the sweeper's test workload).
fn swept_heap(n: usize) -> Heap {
    let mut h = Heap::new(HeapConfig {
        phys_bytes: 128 << 20,
        ..HeapConfig::default()
    });
    let objs: Vec<ObjRef> = (0..n)
        .map(|i| h.alloc((i % 3) as u32, (i % 8) as u32, false).unwrap())
        .collect();
    let live = n / 2;
    for i in 0..live.saturating_sub(1) {
        if h.nrefs(objs[i]) > 0 {
            h.set_ref(objs[i], 0, Some(objs[i + 1]));
        }
    }
    h.set_roots(&objs[..live]);
    tracegc::heap::verify::software_mark(&mut h);
    h
}

/// The CPU collector's test workload.
fn cpu_heap(layout: LayoutKind) -> Heap {
    let mut h = Heap::new(HeapConfig {
        phys_bytes: 128 << 20,
        layout,
        ..HeapConfig::default()
    });
    let objs: Vec<ObjRef> = (0..500)
        .map(|i| h.alloc(2 + (i % 3) as u32, (i % 5) as u32, false).unwrap())
        .collect();
    for i in 0..300usize {
        h.set_ref(objs[i], 0, Some(objs[(i + 1) % 300]));
        h.set_ref(objs[i], 1, Some(objs[(i * 17) % 300]));
    }
    for i in 300..499usize {
        h.set_ref(objs[i], 0, Some(objs[i + 1]));
    }
    h.set_roots(&[objs[0], objs[150]]);
    h
}

fn mark_fingerprint(layout: LayoutKind) -> String {
    let mut heap = mark_heap(1500, layout);
    let mut mem = MemSystem::ddr3(Default::default());
    let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
    let r = unit.run_mark(&mut heap, &mut mem, 0);
    format!(
        "end={};marked={};refs={};{}",
        r.end,
        r.objects_marked,
        r.refs_enqueued,
        ledger(&r.stalls)
    )
}

fn sweep_fingerprint(sweepers: usize) -> String {
    let mut heap = swept_heap(2000);
    let mut mem = MemSystem::ddr3(Default::default());
    let cfg = GcUnitConfig {
        sweepers,
        ..GcUnitConfig::default()
    };
    let mut unit = ReclamationUnit::new(cfg, &heap);
    let r = unit.run_sweep(&mut heap, &mut mem, 0);
    format!(
        "end={};freed={};reads={};{}",
        r.end,
        r.cells_freed,
        r.line_reads,
        ledger(&r.stalls)
    )
}

fn cpu_fingerprint(layout: LayoutKind) -> String {
    let mut heap = cpu_heap(layout);
    let mut mem = MemSystem::ddr3(Default::default());
    let mut cpu = tracegc::cpu::Cpu::new(tracegc::cpu::CpuConfig::default(), &mut heap);
    let (mark, sweep) = cpu.run_gc(&mut heap, &mut mem);
    format!(
        "mark={};work={};refs={};{}|sweep={};work={};{}",
        mark.cycles,
        mark.work_items,
        mark.refs_traced,
        ledger(&mark.stalls),
        sweep.cycles,
        sweep.work_items,
        ledger(&sweep.stalls)
    )
}

fn gc_unit_fingerprint() -> String {
    let mut heap = mark_heap(1200, LayoutKind::Bidirectional);
    let mut mem = MemSystem::ddr3(Default::default());
    let mut unit = GcUnit::new(GcUnitConfig::default(), &mut heap);
    let r = unit.run_gc(&mut heap, &mut mem);
    format!(
        "mark_end={};sweep_end={};marked={};freed={}",
        r.mark.end, r.sweep.end, r.mark.objects_marked, r.sweep.cells_freed
    )
}

fn multiproc_context(n: usize, seed: u64) -> ProcessContext {
    let mut h = Heap::new(HeapConfig {
        phys_bytes: 64 << 20,
        ..HeapConfig::default()
    });
    let objs: Vec<ObjRef> = (0..n)
        .map(|i| h.alloc(2, (i % 3) as u32, false).unwrap())
        .collect();
    let live = n / 2;
    for i in 0..live {
        if 2 * i + 1 < live {
            h.set_ref(objs[i], 0, Some(objs[2 * i + 1]));
        }
        h.set_ref(
            objs[i],
            1,
            Some(objs[((i as u64 * 17 + seed) % live as u64) as usize]),
        );
    }
    h.set_roots(&[objs[0]]);
    let unit = TraversalUnit::new(GcUnitConfig::default(), &mut h);
    ProcessContext { unit, heap: h }
}

fn multiproc_fingerprint() -> String {
    let mut procs = vec![multiproc_context(1500, 1), multiproc_context(1000, 2)];
    let mut mem = MemSystem::ddr3(Default::default());
    let report = run_multiprocess_mark(&mut procs, &mut mem, 0);
    format!(
        "end={};p0_end={};p0_marked={};p1_end={};p1_marked={}",
        report.end,
        report.per_process[0].end,
        report.per_process[0].objects_marked,
        report.per_process[1].end,
        report.per_process[1].objects_marked
    )
}

fn concurrent_fingerprint() -> String {
    let mut heap = mark_heap(1500, LayoutKind::Bidirectional);
    let mut mem = MemSystem::ddr3(Default::default());
    let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
    let r = run_concurrent_mark(&mut unit, &mut heap, &mut mem, MutatorConfig::default(), 0);
    format!(
        "end={};marked={};ops={};barriers={}",
        r.traversal.end, r.traversal.objects_marked, r.mutator_ops, r.write_barriers
    )
}

// ---------------------------------------------------------------------
// Golden fingerprints captured from the pre-refactor loops on `main`.
// ---------------------------------------------------------------------

const GOLDEN_MARK_BIDI: &str = "end=10634;marked=900;refs=1799;busy=4814;mem_latency=5673;\
                                queue_full=0;tlb_miss=147;ptw_busy=0;throttled=0;port_busy=0;idle=0";
const GOLDEN_MARK_CONV: &str = "end=21713;marked=900;refs=1799;busy=8074;mem_latency=13110;\
                                queue_full=0;tlb_miss=529;ptw_busy=0;throttled=0;port_busy=0;idle=0";
const GOLDEN_SWEEP_2: &str = "end=182515;freed=1000;reads=5802;busy=191216;mem_latency=112601;\
                              queue_full=0;tlb_miss=1165;ptw_busy=113;throttled=0;port_busy=0;\
                              idle=59935";
const GOLDEN_SWEEP_4: &str = "end=107251;freed=1000;reads=5802;busy=191216;mem_latency=118967;\
                              queue_full=0;tlb_miss=1087;ptw_busy=444;throttled=0;port_busy=0;\
                              idle=117290";
const GOLDEN_CPU_BIDI: &str = "mark=29038;work=300;refs=900;busy=10522;mem_latency=17724;\
                               queue_full=0;tlb_miss=792;ptw_busy=0;throttled=0;port_busy=0;idle=0\
                               |sweep=167708;work=200;busy=35833;mem_latency=128962;queue_full=0;\
                               tlb_miss=2913;ptw_busy=0;throttled=0;port_busy=0;idle=0";
const GOLDEN_GC_UNIT: &str = "mark_end=7830;sweep_end=71908;marked=720;freed=480";
// Regenerated when round-robin arbitration became hop-invariant (the
// grant pointer now advances one slot per grant round instead of being
// derived from the absolute cycle, so post-idle-span rotation resumes
// where it left off instead of jumping to `now % n`).
const GOLDEN_MULTIPROC_DUO: &str = "end=6195;p0_end=3067;p0_marked=200;p1_end=6195;p1_marked=350";
const GOLDEN_CONCURRENT: &str = "end=10854;marked=900;ops=271;barriers=60";

#[test]
fn print_fingerprints() {
    // Run with --nocapture to (re)capture the golden constants.
    println!(
        "GOLDEN_MARK_BIDI: {}",
        mark_fingerprint(LayoutKind::Bidirectional)
    );
    println!(
        "GOLDEN_MARK_CONV: {}",
        mark_fingerprint(LayoutKind::Conventional)
    );
    println!("GOLDEN_SWEEP_2: {}", sweep_fingerprint(2));
    println!("GOLDEN_SWEEP_4: {}", sweep_fingerprint(4));
    println!(
        "GOLDEN_CPU_BIDI: {}",
        cpu_fingerprint(LayoutKind::Bidirectional)
    );
    println!("GOLDEN_GC_UNIT: {}", gc_unit_fingerprint());
    println!("GOLDEN_MULTIPROC_DUO: {}", multiproc_fingerprint());
    println!("GOLDEN_CONCURRENT: {}", concurrent_fingerprint());
}

#[test]
fn scheduled_mark_matches_pre_refactor_golden() {
    assert_eq!(
        mark_fingerprint(LayoutKind::Bidirectional),
        GOLDEN_MARK_BIDI
    );
    assert_eq!(mark_fingerprint(LayoutKind::Conventional), GOLDEN_MARK_CONV);
}

#[test]
fn scheduled_sweep_matches_pre_refactor_golden() {
    assert_eq!(sweep_fingerprint(2), GOLDEN_SWEEP_2);
    assert_eq!(sweep_fingerprint(4), GOLDEN_SWEEP_4);
}

#[test]
fn scheduled_cpu_phases_match_pre_refactor_golden() {
    assert_eq!(cpu_fingerprint(LayoutKind::Bidirectional), GOLDEN_CPU_BIDI);
}

#[test]
fn scheduled_gc_unit_matches_pre_refactor_golden() {
    assert_eq!(gc_unit_fingerprint(), GOLDEN_GC_UNIT);
}

#[test]
fn scheduled_multiproc_matches_pre_refactor_golden() {
    assert_eq!(multiproc_fingerprint(), GOLDEN_MULTIPROC_DUO);
}

#[test]
fn scheduled_concurrent_matches_pre_refactor_golden() {
    assert_eq!(concurrent_fingerprint(), GOLDEN_CONCURRENT);
}

// ---------------------------------------------------------------------
// Fast-forward vs lockstep: the same driver run under both pacings
// must agree on every fingerprint (cycle counts AND full ledgers).
// ---------------------------------------------------------------------

#[test]
fn pacing_differential_deterministic_drivers() {
    use tracegc::sim::{with_pacing, Pacing};
    let both = |f: &dyn Fn() -> String| {
        (
            with_pacing(Pacing::FastForward, f),
            with_pacing(Pacing::Lockstep, f),
        )
    };
    for (name, f) in [
        (
            "mark_bidi",
            &(|| mark_fingerprint(LayoutKind::Bidirectional)) as &dyn Fn() -> String,
        ),
        ("mark_conv", &|| mark_fingerprint(LayoutKind::Conventional)),
        ("sweep_2", &|| sweep_fingerprint(2)),
        ("sweep_4", &|| sweep_fingerprint(4)),
        ("cpu_bidi", &|| cpu_fingerprint(LayoutKind::Bidirectional)),
        ("gc_unit", &|| gc_unit_fingerprint()),
        ("multiproc", &|| multiproc_fingerprint()),
        ("concurrent", &|| concurrent_fingerprint()),
    ] {
        let (ff, ls) = both(f);
        assert_eq!(ff, ls, "{name}: fast-forward and lockstep disagree");
    }
}

// ---------------------------------------------------------------------
// Randomized differential wall: seeded (workload, config, fault-plan,
// policy) combinations, each run under both pacings, asserting
// identical cycle counts, complete stall ledgers, trap registers and
// outcome classifications. Combo counts are trimmed in debug builds so
// `cargo test` stays fast; release runs clear a thousand scheduler
// runs across the four families.
// ---------------------------------------------------------------------

use tracegc::hwgc::{CacheTopology, MarkEngine, SweepEngine};
use tracegc::runner::{run_faulted_mark, MarkOutcome, MemKind};
use tracegc::sim::{
    with_pacing, Engine, FaultConfig, Pacing, Policy, Progress, Rng, Scheduler, SimError, StdRng,
};
use tracegc::workloads::spec::DACAPO;

/// Seeds per randomized family (each seed = one combo run twice).
const COMBOS: u64 = if cfg!(debug_assertions) { 12 } else { 150 };
/// Fault runs build real benchmark heaps, so they get a smaller pool.
const FAULT_COMBOS: u64 = if cfg!(debug_assertions) { 6 } else { 24 };

/// Runs `f` under both pacings and asserts identical fingerprints.
fn assert_pacing_equal(name: String, f: impl Fn() -> String) {
    let ff = with_pacing(Pacing::FastForward, &f);
    let ls = with_pacing(Pacing::Lockstep, &f);
    assert_eq!(ff, ls, "{name}: fast-forward and lockstep disagree");
}

/// A seeded unit configuration exercising the fast-forward-sensitive
/// corners: queue pressure, compression, throttling, walker count,
/// cache topology.
fn random_cfg(rng: &mut StdRng) -> GcUnitConfig {
    let mut cfg = GcUnitConfig {
        marker_slots: [1, 2, 4, 8][rng.random_range(0..4usize)],
        tracer_queue: [2, 4, 16][rng.random_range(0..3usize)],
        markq_entries: [8, 16, 64][rng.random_range(0..3usize)],
        markq_side: [16, 32, 64][rng.random_range(0..3usize)],
        compress: rng.random(),
        markbit_cache: [0, 64][rng.random_range(0..2usize)],
        sweepers: [1, 2, 4, 8][rng.random_range(0..4usize)],
        min_issue_interval: [0, 0, 2, 5][rng.random_range(0..4usize)],
        topology: if rng.random() {
            CacheTopology::Shared
        } else {
            CacheTopology::Partitioned
        },
        ..GcUnitConfig::default()
    };
    cfg.tlb.concurrent_walks = [1, 2, 4][rng.random_range(0..3usize)];
    cfg.tlb.blocking_requesters = rng.random();
    cfg
}

/// A seeded tree-with-cross-edges heap (size and cross edges vary).
fn random_mark_heap(rng: &mut StdRng, layout: LayoutKind) -> Heap {
    let n = rng.random_range(200..700usize);
    let mut h = Heap::new(HeapConfig {
        phys_bytes: 128 << 20,
        layout,
        ..HeapConfig::default()
    });
    let objs: Vec<ObjRef> = (0..n)
        .map(|i| h.alloc(3, (i % 6) as u32, false).unwrap())
        .collect();
    let live = n * 3 / 5;
    for i in 0..live {
        if 2 * i + 1 < live {
            h.set_ref(objs[i], 0, Some(objs[2 * i + 1]));
        }
        if 2 * i + 2 < live {
            h.set_ref(objs[i], 1, Some(objs[2 * i + 2]));
        }
        h.set_ref(objs[i], 2, Some(objs[rng.random_range(0..live)]));
    }
    h.set_roots(&[objs[0]]);
    h
}

#[test]
fn pacing_differential_randomized_marks() {
    for seed in 0..COMBOS {
        assert_pacing_equal(format!("mark[seed={seed}]"), || {
            let mut rng = StdRng::seed_from_u64(seed);
            let layout = if rng.random() {
                LayoutKind::Bidirectional
            } else {
                LayoutKind::Conventional
            };
            let cfg = random_cfg(&mut rng);
            let mut heap = random_mark_heap(&mut rng, layout);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(cfg, &mut heap);
            let r = unit.run_mark(&mut heap, &mut mem, 0);
            format!(
                "end={};marked={};refs={};{}",
                r.end,
                r.objects_marked,
                r.refs_enqueued,
                ledger(&r.stalls)
            )
        });
    }
}

#[test]
fn pacing_differential_randomized_sweeps() {
    for seed in 0..COMBOS {
        assert_pacing_equal(format!("sweep[seed={seed}]"), || {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let cfg = random_cfg(&mut rng);
            let n = rng.random_range(400..1200usize);
            let mut heap = swept_heap(n);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = ReclamationUnit::new(cfg, &heap);
            let r = unit.run_sweep(&mut heap, &mut mem, 0);
            format!(
                "end={};freed={};reads={};{}",
                r.end,
                r.cells_freed,
                r.line_reads,
                ledger(&r.stalls)
            )
        });
    }
}

#[test]
fn pacing_differential_randomized_policies() {
    use tracegc::heap::SocCtx;
    for seed in 0..COMBOS {
        assert_pacing_equal(format!("policy[seed={seed}]"), || {
            let mut rng = StdRng::seed_from_u64(2000 + seed);
            let policy = match rng.random_range(0..4usize) {
                0 => Policy::Lockstep,
                1 => Policy::Priority(if rng.random() { vec![0, 1] } else { vec![1, 0] }),
                2 => Policy::RoundRobin,
                _ => Policy::Throttled {
                    period: rng.random_range(2..8u64),
                },
            };
            // One unit marking heap A while the sweeper array reclaims
            // heap B on the same DDR3 controller (the overlap shape).
            let mut a = random_mark_heap(&mut rng, LayoutKind::Bidirectional);
            let mut b = swept_heap(rng.random_range(300..800usize));
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut a);
            let mut rec = ReclamationUnit::new(GcUnitConfig::default(), &b);
            unit.begin(&a, 0);
            let mut sweep_eng = SweepEngine::new(&mut rec, 1, 0);
            let report = {
                let mut mark_eng = MarkEngine::new(&mut unit, 0);
                let mut ctx = SocCtx::new(&mut mem, vec![&mut a, &mut b]);
                let mut engines: [&mut dyn Engine<SocCtx>; 2] = [&mut mark_eng, &mut sweep_eng];
                Scheduler::new(policy).run(&mut engines, &mut ctx, 0)
            };
            let mark = unit.result_at(0, report.ends[0]);
            let sweep = sweep_eng.into_result();
            format!(
                "end={};ends={:?};mark_end={};marked={};{}|sweep_end={};freed={};{}",
                report.end,
                report.ends,
                mark.end,
                mark.objects_marked,
                ledger(&mark.stalls),
                sweep.end,
                sweep.cells_freed,
                ledger(&sweep.stalls)
            )
        });
    }
}

#[test]
fn pacing_differential_randomized_round_robin() {
    // Pin of the round-robin hop-invariance fix: the rotating grant
    // pointer decouples arbitration from absolute time, so an
    // event-driven hop over an idle span must resume the rotation at
    // the identical engine — and charge the identical span — that the
    // cycle-by-cycle crawl sees. Randomized multi-process mark
    // schedules on one shared datapath (the round-robin arbiter),
    // fingerprinted down to every per-process stall ledger.
    for seed in 0..COMBOS {
        assert_pacing_equal(format!("round_robin[seed={seed}]"), || {
            let mut rng = StdRng::seed_from_u64(4000 + seed);
            let nprocs = rng.random_range(2..5usize);
            let mut procs: Vec<_> = (0..nprocs)
                .map(|i| multiproc_context(rng.random_range(300..1200usize), seed * 8 + i as u64))
                .collect();
            let mut mem = MemSystem::ddr3(Default::default());
            let report = run_multiprocess_mark(&mut procs, &mut mem, 0);
            let per: Vec<String> = report
                .per_process
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    format!(
                        "p{i}:end={};marked={};{}",
                        p.end,
                        p.objects_marked,
                        ledger(&p.stalls)
                    )
                })
                .collect();
            format!("end={};{}", report.end, per.join("|"))
        });
    }
}

#[test]
fn pacing_differential_randomized_faults() {
    // Fault runs must agree on *everything* architected: the outcome
    // class, the trap kind, the faulting-entry register (`trap.va`),
    // the trap cycle, both cycle counters, the final mark set, the
    // injector counters and both stall ledgers.
    for seed in 0..FAULT_COMBOS {
        assert_pacing_equal(format!("fault[seed={seed}]"), || {
            let mut rng = StdRng::seed_from_u64(3000 + seed);
            let spec = DACAPO[rng.random_range(0..DACAPO.len())].scaled(0.02);
            let layout = if rng.random() {
                LayoutKind::Bidirectional
            } else {
                LayoutKind::Conventional
            };
            let fault = FaultConfig {
                seed: rng.next_u64(),
                bit_flip_rate: [0.0, 0.001][rng.random_range(0..2usize)],
                ecc_uncorrectable_weight: 0.2,
                ecc_detect_weight: 0.3,
                drop_rate: [0.0, 0.002][rng.random_range(0..2usize)],
                delay_rate: [0.0, 0.01][rng.random_range(0..2usize)],
                corrupt_ref_rate: [0.0, 0.01][rng.random_range(0..2usize)],
                corrupt_header_rate: [0.0, 0.005][rng.random_range(0..2usize)],
                pte_fault_rate: [0.0, 0.2][rng.random_range(0..2usize)],
                ..FaultConfig::default()
            };
            let run = run_faulted_mark(
                &spec,
                layout,
                GcUnitConfig::default(),
                MemKind::ddr3_default(),
                fault,
            );
            let outcome = match &run.outcome {
                MarkOutcome::Clean => "clean".to_string(),
                MarkOutcome::Fallback(fb) => format!(
                    "trap kind={:?} va={:#x} at={} drained={} cycles={}",
                    fb.trap.kind, fb.trap.va, fb.trap.at, fb.drained, fb.cycles
                ),
                MarkOutcome::Failed(e) => format!("failed {e}"),
            };
            format!(
                "{outcome};unit={};fallback={};marked={};stats={:?};{}|{}",
                run.unit_cycles,
                run.fallback_cycles,
                run.objects_marked,
                run.stats,
                ledger(&run.unit_stalls),
                ledger(&run.fallback_stalls)
            )
        });
    }
}

// ---------------------------------------------------------------------
// Watchdog equivalence: a wedged engine set must trip the no-progress
// watchdog at the identical cycle, with the identical dump (names,
// stall reasons, pending events AND ledgers) under both pacings — the
// fast-forward hop is clamped to the watchdog deadline precisely so
// livelocks stay observable.
// ---------------------------------------------------------------------

/// Always stalled, honestly promising a fixed far-future event, with a
/// scheduler-charged ledger (so the dump exercises span charging).
struct Wedged {
    event: u64,
    stalls: tracegc::sim::StallAccounting,
}

impl Engine<()> for Wedged {
    fn name(&self) -> &'static str {
        "wedged"
    }
    fn step(&mut self, _now: u64, _ctx: &mut ()) -> Progress {
        Progress::Stalled
    }
    fn next_event_at(&self) -> Option<u64> {
        Some(self.event)
    }
    fn stall_reason(&self, _now: u64) -> StallReason {
        StallReason::MemLatency
    }
    fn note_stall(&mut self, _now: u64, reason: StallReason, span: u64) {
        self.stalls.stall(reason, span);
    }
    fn ledger(&self) -> Option<StallAccounting> {
        Some(self.stalls)
    }
}

#[test]
fn watchdog_trips_identically_under_both_pacings() {
    let trip = |pacing: Pacing| {
        let mut e = Wedged {
            event: 1_000_000,
            stalls: StallAccounting::default(),
        };
        let err = Scheduler::new(Policy::Lockstep)
            .pacing(pacing)
            .no_progress_limit(1_000)
            .try_run(&mut [&mut e as &mut dyn Engine<()>], &mut (), 0)
            .expect_err("a wedged engine must deadlock");
        match err {
            SimError::Deadlock { at, dump } => (at, dump),
            other => panic!("expected a deadlock, got {other}"),
        }
    };
    let (ff_at, ff_dump) = trip(Pacing::FastForward);
    let (ls_at, ls_dump) = trip(Pacing::Lockstep);
    assert_eq!(ff_at, ls_at, "watchdog must trip at the identical cycle");
    assert_eq!(
        ff_dump, ls_dump,
        "watchdog dumps (reasons, pending events, ledgers) must match"
    );
    assert!(
        ff_dump.contains("wedged") && ff_dump.contains("mem_latency"),
        "dump must carry the engine name and stall reason: {ff_dump}"
    );
}

#[test]
fn watchdog_hop_landing_exactly_on_the_deadline_trips_identically() {
    // The exact-boundary case of the fast-forward clamp
    // `t.min(last_progress + limit + 1)`: the wedged engine's promised
    // event lands *exactly* on the watchdog deadline, so the hop and
    // the deadline coincide on one cycle. The trip cycle and the whole
    // ledger dump must still be identical under both pacings — and the
    // same holds one past the boundary, where the clamp (not the
    // event) decides the hop.
    const LIMIT: u64 = 1_000;
    let trip = |pacing: Pacing, event: u64| {
        let mut e = Wedged {
            event,
            stalls: StallAccounting::default(),
        };
        let err = Scheduler::new(Policy::Lockstep)
            .pacing(pacing)
            .no_progress_limit(LIMIT)
            .try_run(&mut [&mut e as &mut dyn Engine<()>], &mut (), 0)
            .expect_err("a wedged engine must deadlock");
        match err {
            SimError::Deadlock { at, dump } => (at, dump),
            other => panic!("expected a deadlock, got {other}"),
        }
    };
    // Start 0, no progress ever: the deadline is LIMIT + 1. Probe the
    // event on the deadline and one past it (where the clamp bites).
    for event in [LIMIT + 1, LIMIT + 2] {
        let (ff_at, ff_dump) = trip(Pacing::FastForward, event);
        let (ls_at, ls_dump) = trip(Pacing::Lockstep, event);
        assert_eq!(
            ff_at, ls_at,
            "event={event}: watchdog must trip at the identical cycle"
        );
        assert_eq!(
            ff_dump, ls_dump,
            "event={event}: watchdog dumps (reasons, events, ledgers) must match"
        );
        assert!(
            ff_at <= LIMIT + 1,
            "event={event}: the clamp must not let the hop sail past the \
             deadline (tripped at {ff_at})"
        );
    }
}

#[test]
fn single_process_multiproc_equals_plain_run_mark_exactly() {
    // One process on the shared datapath is served every cycle, so the
    // round-robin scheduler must degenerate to the stop-the-world
    // driver: same end cycle AND the same stall ledger.
    let multi = {
        let mut procs = [multiproc_context(1200, 4)];
        let mut mem = MemSystem::ddr3(Default::default());
        let r = run_multiprocess_mark(&mut procs, &mut mem, 0);
        r.per_process[0].clone()
    };
    let plain = {
        let mut procs = [multiproc_context(1200, 4)];
        let mut mem = MemSystem::ddr3(Default::default());
        let p = &mut procs[0];
        p.unit.run_mark(&mut p.heap, &mut mem, 0)
    };
    assert_eq!(multi.end, plain.end, "end cycles must match exactly");
    assert_eq!(multi.objects_marked, plain.objects_marked);
    assert_eq!(multi.refs_enqueued, plain.refs_enqueued);
    assert_eq!(
        ledger(&multi.stalls),
        ledger(&plain.stalls),
        "stall ledgers must match exactly"
    );
}
