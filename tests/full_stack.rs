//! Full-stack behavioural checks: paper-shaped *performance* properties
//! that must hold across the whole simulator, not just functional
//! equality.

use tracegc::heap::LayoutKind;
use tracegc::hwgc::{GcUnitConfig, MarkQueueStats};
use tracegc::mem::Source;
use tracegc::runner::{run_unit_gc, DualRun, MemKind};
use tracegc::vmem::TlbConfig;
use tracegc::workloads::spec::by_name;

fn spec(name: &str) -> tracegc::workloads::spec::BenchSpec {
    by_name(name).expect("benchmark exists").scaled(0.03)
}

#[test]
fn unit_beats_cpu_on_both_phases_for_every_memory_system() {
    for mem_kind in [MemKind::ddr3_default(), MemKind::pipe_8gbps()] {
        let mut run = DualRun::new(
            &spec("avrora"),
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
        );
        let p = run.run_pause(mem_kind);
        assert!(p.mark_speedup() > 1.5, "mark speedup {}", p.mark_speedup());
        assert!(
            p.sweep_speedup() > 1.0,
            "sweep speedup {}",
            p.sweep_speedup()
        );
    }
}

#[test]
fn faster_memory_increases_the_units_advantage() {
    // Fig. 15 vs Fig. 17: the unit's mark speedup grows with memory
    // bandwidth because the CPU cannot exploit it.
    let mut ddr_run = DualRun::new(
        &spec("xalan"),
        LayoutKind::Bidirectional,
        GcUnitConfig::default(),
    );
    let ddr = ddr_run.run_pause(MemKind::ddr3_default());
    let mut pipe_run = DualRun::new(
        &spec("xalan"),
        LayoutKind::Bidirectional,
        GcUnitConfig::default(),
    );
    let pipe = pipe_run.run_pause(MemKind::pipe_8gbps());
    assert!(
        pipe.mark_speedup() > ddr.mark_speedup(),
        "pipe {} <= ddr {}",
        pipe.mark_speedup(),
        ddr.mark_speedup()
    );
}

#[test]
fn spilling_is_a_small_fraction_of_requests_at_baseline() {
    // Fig. 19's surprise: at the 1,024-entry baseline, spilling is ~2%
    // of memory requests.
    let run = run_unit_gc(
        &spec("avrora"),
        LayoutKind::Bidirectional,
        GcUnitConfig::default(),
        MemKind::ddr3_default(),
    );
    let q: MarkQueueStats = run.report.mark.markq;
    let spill = q.spill_writes + q.spill_reads;
    let frac = spill as f64 / run.snapshot.total_requests.max(1) as f64;
    assert!(frac < 0.10, "spill fraction {frac}");
}

#[test]
fn compression_halves_spill_bytes_end_to_end() {
    let small_q = |compress| GcUnitConfig {
        markq_entries: 32,
        markq_side: 16,
        compress,
        ..GcUnitConfig::default()
    };
    let full = run_unit_gc(
        &spec("pmd"),
        LayoutKind::Bidirectional,
        small_q(false),
        MemKind::ddr3_default(),
    )
    .report
    .mark
    .markq
    .spill_bytes_written;
    let compressed = run_unit_gc(
        &spec("pmd"),
        LayoutKind::Bidirectional,
        small_q(true),
        MemKind::ddr3_default(),
    )
    .report
    .mark
    .markq
    .spill_bytes_written;
    assert!(full > 0);
    let ratio = compressed as f64 / full as f64;
    assert!((0.3..=0.7).contains(&ratio), "compression ratio {ratio}");
}

#[test]
fn marker_and_tracer_dominate_partitioned_memory_traffic() {
    // Fig. 18b.
    let run = run_unit_gc(
        &spec("xalan"),
        LayoutKind::Bidirectional,
        GcUnitConfig::default(),
        MemKind::ddr3_default(),
    );
    let s = &run.snapshot;
    let work = s.requests(Source::Marker) + s.requests(Source::Tracer);
    let overhead = s.requests(Source::Ptw) + s.requests(Source::MarkQueue);
    assert!(
        work > overhead,
        "work {work} should dominate overhead {overhead}"
    );
}

#[test]
fn nonblocking_walker_helps_on_fast_memory() {
    // ablC: the paper's proposed future-work walker.
    let time = |walks| {
        run_unit_gc(
            &spec("xalan"),
            LayoutKind::Bidirectional,
            GcUnitConfig {
                tlb: TlbConfig {
                    concurrent_walks: walks,
                    ..TlbConfig::default()
                },
                ..GcUnitConfig::default()
            },
            MemKind::pipe_8gbps(),
        )
        .report
        .mark
        .cycles()
    };
    assert!(time(4) <= time(1));
}

#[test]
fn energy_model_reproduces_fig23_direction() {
    let model = tracegc::model::EnergyModel::default();
    // Run at figure scale: with tiny heaps the CPU's caches absorb most
    // traffic and the unit's per-request DRAM energy genuinely loses —
    // Fig. 23's claim is about benchmark-sized heaps.
    let mut run = DualRun::new(
        &by_name("sunflow").expect("sunflow exists").scaled(0.25),
        LayoutKind::Bidirectional,
        GcUnitConfig::default(),
    );
    let p = run.run_pause(MemKind::ddr3_default());
    let cpu = model.pause_energy(
        tracegc::model::Agent::RocketCore,
        p.cpu_mark_cycles + p.cpu_sweep_cycles,
        p.cpu_mem.total_bytes,
        p.cpu_mem.total_requests,
        p.cpu_mem.activates.unwrap_or(0),
    );
    let unit = model.pause_energy(
        tracegc::model::Agent::GcUnit,
        p.unit_mark_cycles + p.unit_sweep_cycles,
        p.unit_mem.total_bytes,
        p.unit_mem.total_requests,
        p.unit_mem.activates.unwrap_or(0),
    );
    // Fig. 23: higher DRAM power, lower total energy.
    assert!(unit.dram_power_mw > cpu.dram_power_mw);
    assert!(unit.total_mj() < cpu.total_mj());
}
