//! Every experiment in the registry runs end-to-end at smoke scale and
//! produces well-formed tables.

use tracegc::experiments::{run, Options, ALL};

fn smoke_opts() -> Options {
    Options {
        scale: 0.015,
        pauses: 1,
        ..Options::default()
    }
}

#[test]
fn every_experiment_runs_and_produces_tables() {
    for id in ALL {
        // fig18 and ablE internally raise their scale for TLB pressure;
        // they get their own (slower, ignored-by-default) test below.
        if id == "fig18" || id == "ablE" {
            continue;
        }
        let out = run(id, &smoke_opts()).unwrap_or_else(|| panic!("unknown id {id}"));
        assert_eq!(out.id, id);
        assert!(!out.tables.is_empty(), "{id} produced no tables");
        for table in &out.tables {
            assert!(!table.headers.is_empty(), "{id} has headerless table");
            assert!(!table.rows.is_empty(), "{id} has an empty table");
            for row in &table.rows {
                assert_eq!(row.len(), table.headers.len(), "{id} ragged row");
            }
            // CSV renders.
            let csv = table.to_csv();
            assert!(csv.lines().count() == table.rows.len() + 1);
        }
    }
}

#[test]
#[ignore = "fig18/ablE run at full workload scale; expensive (~1 min release, minutes debug)"]
fn forced_scale_experiments_run() {
    let out = run("fig18", &smoke_opts()).expect("fig18 known");
    assert_eq!(out.tables.len(), 2);
    let out = run("ablE", &smoke_opts()).expect("ablE known");
    assert_eq!(out.tables.len(), 1);
}

#[test]
fn fig15_reports_speedups_in_the_paper_band() {
    let out = run("fig15", &smoke_opts()).expect("fig15 known");
    let table = &out.tables[0];
    // The geomean row's mark-speedup column should land in the broad
    // calibration band of DESIGN.md §6 (3-6x at smoke scale).
    let geomean = table.rows.last().expect("geomean row");
    let mark = geomean[3].trim_end_matches('x').parse::<f64>().unwrap();
    assert!((2.0..=8.0).contains(&mark), "mark geomean {mark}");
    let sweep = geomean[6].trim_end_matches('x').parse::<f64>().unwrap();
    assert!((1.2..=4.0).contains(&sweep), "sweep geomean {sweep}");
}

#[test]
fn fig22_area_headline_matches_paper() {
    let out = run("fig22", &smoke_opts()).expect("fig22 known");
    let totals = &out.tables[0];
    let get = |name: &str| {
        totals
            .rows
            .iter()
            .find(|r| r[0] == name)
            .map(|r| r[1].parse::<f64>().unwrap())
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    let ratio = get("gc-unit") / get("rocket-core");
    assert!((0.14..=0.23).contains(&ratio), "unit/core = {ratio}");
}

#[test]
fn csv_files_are_written() {
    let dir = std::env::temp_dir().join(format!("tracegc-smoke-{}", std::process::id()));
    let out = run("table1", &smoke_opts()).expect("table1 known");
    let path = dir.join("table1.csv");
    out.tables[0].write_csv(&path).expect("csv written");
    let contents = std::fs::read_to_string(&path).expect("readable");
    assert!(contents.contains("parameter"));
    std::fs::remove_dir_all(&dir).ok();
}
