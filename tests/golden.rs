//! Golden-fingerprint regression wall: the CSV output of key
//! experiments at smoke scale must match the checked-in files under
//! `tests/golden/` byte for byte.
//!
//! Any intentional change to a simulator model shows up here as a
//! readable CSV diff. Regenerate the goldens with
//!
//! ```text
//! cargo run -p tracegc --release --bin experiments -- \
//!     --scale 0.015 --pauses 1 --out tests/golden table1 fig15 fig20 faultsweep
//! ```
//!
//! (`faultsweep` makes the regeneration command exit 2 — degraded-as-
//! designed — which is expected.)
//!
//! and commit the result alongside the model change.

use tracegc::experiments::{run, Options};

fn golden_opts() -> Options {
    Options {
        scale: 0.015,
        pauses: 1,
        ..Options::default()
    }
}

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compares each of `id`'s tables against its golden CSV byte-for-byte.
fn assert_matches_golden(id: &str) {
    let out = run(id, &golden_opts()).expect("known id");
    assert!(!out.tables.is_empty());
    for (i, table) in out.tables.iter().enumerate() {
        // The same naming scheme the CLI uses for `--out`.
        let name = if out.tables.len() == 1 {
            format!("{id}.csv")
        } else {
            format!("{id}_{i}.csv")
        };
        let path = golden_dir().join(&name);
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        let actual = table.to_csv();
        assert_eq!(
            actual, expected,
            "{name} drifted from its golden copy; if the model change is \
             intentional, regenerate tests/golden (see this file's header)"
        );
    }
}

#[test]
fn table1_matches_golden() {
    assert_matches_golden("table1");
}

#[test]
fn fig15_matches_golden() {
    assert_matches_golden("fig15");
}

#[test]
fn fig20_matches_golden() {
    assert_matches_golden("fig20");
}

/// Pins the whole fault pipeline — injection order, retry accounting,
/// trap points, and fallback cost — as one readable CSV.
#[test]
fn faultsweep_matches_golden() {
    assert_matches_golden("faultsweep");
}
