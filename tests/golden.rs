//! Registry-wide golden-fingerprint wall: every experiment in the
//! registry has checked-in golden artifacts (CSV tables **and** the
//! metrics sidecar) under `tests/golden/`, enumerated by
//! `tests/golden/MANIFEST.txt`, and each must match byte for byte at
//! smoke scale.
//!
//! The manifest is what makes coverage a closed set: an experiment
//! added to the registry without goldens fails
//! `manifest_covers_entire_registry` (not just "no test existed"), a
//! golden file deleted or orphaned fails the same test, and any model
//! drift shows up as a readable CSV or JSON diff.
//!
//! Regenerate after an intentional model change with
//!
//! ```text
//! cargo test --release -p tracegc --test golden regenerate_goldens -- --ignored
//! ```
//!
//! which reruns every experiment (including the two that force their
//! own workload scale and take ~a minute) and rewrites the artifacts
//! plus the manifest. Commit the result alongside the model change.

use std::collections::BTreeMap;
use std::path::PathBuf;

use tracegc::experiments::{self, run_ids, CompletedExperiment, Options};

/// The smoke fingerprint point: tiny but large enough that every
/// experiment exercises its full pipeline.
fn golden_opts() -> Options {
    Options {
        scale: 0.015,
        pauses: 1,
        jobs: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ..Options::default()
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// The two experiments that force their own workload scale internally
/// and therefore cost minutes under the debug profile; their goldens
/// are still mandatory (the manifest check covers them) but their
/// byte-comparison runs in the `#[ignore]`d full-wall test.
const EXPENSIVE: [&str; 2] = ["fig18", "ablE"];

fn smoke_ids() -> Vec<&'static str> {
    experiments::ALL
        .iter()
        .copied()
        .filter(|id| !EXPENSIVE.contains(id))
        .collect()
}

/// The golden artifacts of one completed experiment: `(file name,
/// expected bytes)` — the CSV naming scheme the CLI uses for `--out`,
/// plus the metrics sidecar.
fn artifacts(done: &CompletedExperiment) -> Vec<(String, String)> {
    let id = done.output.id;
    let mut files = Vec::new();
    let n = done.output.tables.len();
    for (i, table) in done.output.tables.iter().enumerate() {
        let name = if n == 1 {
            format!("{id}.csv")
        } else {
            format!("{id}_{i}.csv")
        };
        files.push((name, table.to_csv()));
    }
    files.push((format!("{id}.metrics.json"), done.output.metrics.to_json()));
    files
}

/// Parses `MANIFEST.txt` into `id -> artifact file names`.
fn read_manifest() -> BTreeMap<String, Vec<String>> {
    let path = golden_dir().join("MANIFEST.txt");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden manifest {}: {e}", path.display()));
    let mut manifest = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (id, files) = line
            .split_once(':')
            .unwrap_or_else(|| panic!("malformed manifest line '{line}'"));
        let files: Vec<String> = files.split_whitespace().map(str::to_string).collect();
        assert!(!files.is_empty(), "manifest entry '{id}' lists no files");
        let prev = manifest.insert(id.trim().to_string(), files);
        assert!(prev.is_none(), "duplicate manifest entry '{id}'");
    }
    manifest
}

fn assert_wall(ids: &[&str]) {
    let manifest = read_manifest();
    let completed = run_ids(ids, &golden_opts()).expect("known ids");
    for done in &completed {
        let id = done.output.id;
        let produced = artifacts(done);
        let names: Vec<String> = produced.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(
            manifest.get(id),
            Some(&names),
            "{id}: manifest entry out of date; regenerate tests/golden \
             (see this file's header)"
        );
        for (name, actual) in produced {
            let path = golden_dir().join(&name);
            let expected = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
            assert_eq!(
                actual, expected,
                "{name} drifted from its golden copy; if the model change is \
                 intentional, regenerate tests/golden (see this file's header)"
            );
        }
    }
}

/// Coverage is a closed set: every registry experiment has a manifest
/// entry, every listed golden exists and is non-empty, and nothing in
/// `tests/golden/` is unaccounted for. Costs no simulation, so adding
/// an experiment without goldens fails even the fastest test tier.
#[test]
fn manifest_covers_entire_registry() {
    let manifest = read_manifest();
    for id in experiments::ALL {
        assert!(
            manifest.contains_key(id),
            "experiment '{id}' has no golden manifest entry; regenerate \
             tests/golden (see this file's header)"
        );
    }
    for id in manifest.keys() {
        assert!(
            experiments::ALL.contains(&id.as_str()),
            "manifest entry '{id}' is not a registry experiment"
        );
    }
    let mut listed: Vec<&String> = manifest.values().flatten().collect();
    listed.sort();
    listed.windows(2).for_each(|w| {
        assert_ne!(w[0], w[1], "golden file {} listed twice", w[0]);
    });
    for name in &listed {
        let path = golden_dir().join(name);
        let meta = std::fs::metadata(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        assert!(meta.len() > 0, "golden {name} is empty");
    }
    // No orphans: everything on disk is reachable from the manifest.
    for entry in std::fs::read_dir(golden_dir()).unwrap() {
        let file_name = entry.unwrap().file_name().into_string().unwrap();
        if file_name == "MANIFEST.txt" {
            continue;
        }
        assert!(
            listed.iter().any(|n| **n == file_name),
            "tests/golden/{file_name} is not listed in MANIFEST.txt"
        );
    }
}

/// Byte-compares every affordable experiment (the registry minus the
/// two scale-forcing ones) against its goldens.
#[test]
fn golden_wall_smoke() {
    assert_wall(&smoke_ids());
}

/// The expensive rest of the wall. Run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "fig18/ablE force their own workload scale (~minutes under the debug profile)"]
fn golden_wall_full() {
    assert_wall(&EXPENSIVE);
}

/// Regenerates every golden artifact and the manifest. `#[ignore]`d:
/// run explicitly (release profile strongly recommended) after an
/// intentional model change, then review the diff and commit.
#[test]
#[ignore = "writes tests/golden/; run explicitly to regenerate"]
fn regenerate_goldens() {
    let ids: Vec<&str> = experiments::ALL.to_vec();
    let completed = run_ids(&ids, &golden_opts()).expect("known ids");
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let mut manifest = String::from(
        "# Golden artifacts per registry experiment, written by the\n\
         # regenerate_goldens test (see tests/golden.rs). Do not edit by hand.\n",
    );
    for done in &completed {
        let produced = artifacts(done);
        let names: Vec<String> = produced.iter().map(|(n, _)| n.clone()).collect();
        manifest.push_str(&format!("{}: {}\n", done.output.id, names.join(" ")));
        for (name, bytes) in produced {
            std::fs::write(dir.join(name), bytes).unwrap();
        }
    }
    std::fs::write(dir.join("MANIFEST.txt"), manifest).unwrap();
}
