//! Determinism: identical seeds produce bit-identical simulations, and
//! different seeds produce different heaps — the property that makes
//! every figure in EXPERIMENTS.md reproducible.

use tracegc::heap::LayoutKind;
use tracegc::hwgc::GcUnitConfig;
use tracegc::runner::{DualRun, MemKind};
use tracegc::workloads::spec::{by_name, BenchSpec};

fn spec() -> BenchSpec {
    by_name("pmd").expect("pmd exists").scaled(0.015)
}

fn fingerprint(mem_kind: MemKind) -> Vec<u64> {
    let mut run = DualRun::new(&spec(), LayoutKind::Bidirectional, GcUnitConfig::default());
    let pauses = run.run_pauses(mem_kind, 2, 0.2);
    pauses
        .iter()
        .flat_map(|p| {
            [
                p.cpu_mark_cycles,
                p.cpu_sweep_cycles,
                p.unit_mark_cycles,
                p.unit_sweep_cycles,
                p.objects_marked,
                p.cells_freed,
                p.cpu_mem.total_bytes,
                p.unit_mem.total_bytes,
                p.unit_markq.spill_writes,
            ]
        })
        .collect()
}

#[test]
fn identical_seeds_reproduce_exactly_on_ddr3() {
    assert_eq!(
        fingerprint(MemKind::ddr3_default()),
        fingerprint(MemKind::ddr3_default())
    );
}

#[test]
fn identical_seeds_reproduce_exactly_on_pipe() {
    assert_eq!(
        fingerprint(MemKind::pipe_8gbps()),
        fingerprint(MemKind::pipe_8gbps())
    );
}

#[test]
fn different_seeds_differ() {
    let a = tracegc::workloads::generate::generate_heap(&spec(), LayoutKind::Bidirectional);
    let mut other = spec();
    other.seed ^= 0xDEADBEEF;
    let b = tracegc::workloads::generate::generate_heap(&other, LayoutKind::Bidirectional);
    assert_ne!(
        a.heap.reachable_from_roots(),
        b.heap.reachable_from_roots(),
        "different seeds should build different graphs"
    );
}

#[test]
fn results_are_independent_of_jobs() {
    // The whole registry (minus fig18/ablE, which force large scales)
    // through the library API behind `--jobs`: a serial run and an
    // 8-worker run must produce identical tables in identical order.
    use tracegc::experiments::{run_ids, Options, ALL};

    let ids: Vec<&str> = ALL
        .iter()
        .copied()
        .filter(|&id| id != "fig18" && id != "ablE")
        .collect();
    let opts = |jobs| Options {
        scale: 0.015,
        pauses: 1,
        jobs,
        ..Options::default()
    };
    let serial = run_ids(&ids, &opts(1)).expect("valid ids");
    let parallel = run_ids(&ids, &opts(8)).expect("valid ids");

    assert_eq!(serial.len(), parallel.len());
    for ((id, s), p) in ids.iter().zip(&serial).zip(&parallel) {
        assert_eq!(s.output.id, *id, "outputs must come back in request order");
        assert_eq!(s.output.id, p.output.id);
        assert_eq!(s.output.notes, p.output.notes, "{id} notes differ");
        assert_eq!(
            s.output.tables.len(),
            p.output.tables.len(),
            "{id} table count differs"
        );
        for (st, pt) in s.output.tables.iter().zip(&p.output.tables) {
            assert_eq!(st.to_csv(), pt.to_csv(), "{id} tables differ across --jobs");
        }
    }
}

#[test]
fn unknown_ids_are_rejected_before_anything_runs() {
    use tracegc::experiments::{run_ids, Options};
    let err = run_ids(&["fig15", "fig99"], &Options::default()).unwrap_err();
    assert!(err.contains("fig99"), "error should name the bad id: {err}");
}

#[test]
fn scale_changes_the_workload_but_not_the_shape() {
    let small =
        tracegc::workloads::generate::generate_heap(&spec().scaled(0.5), LayoutKind::Bidirectional);
    let large = tracegc::workloads::generate::generate_heap(&spec(), LayoutKind::Bidirectional);
    let small_ratio = small.live_objects as f64 / small.objects.len() as f64;
    let large_ratio = large.live_objects as f64 / large.objects.len() as f64;
    assert!(
        (small_ratio - large_ratio).abs() < 0.1,
        "live fraction should be scale-invariant: {small_ratio} vs {large_ratio}"
    );
}
